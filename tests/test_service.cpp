// Tests for the ensemble service (src/service/): batch-file parsing, the
// pluggable result galleries, and the SimulationPool itself — pool results
// bitwise-identical to standalone runs, memoization of duplicate configs
// (verified by run counters), failure isolation, and deterministic
// id-ordered gallery rows at any concurrency.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/engine/kernel_cache.h"
#include "exastp/engine/simulation.h"
#include "exastp/service/job_queue.h"
#include "exastp/service/result_gallery.h"
#include "exastp/service/simulation_pool.h"

namespace exastp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Captures the rows a pool streams, for order/bracketing assertions.
class RecordingGallery final : public ResultGallery {
 public:
  void open() override { opened = true; }
  void add(const JobResult& r) override {
    EXPECT_TRUE(opened);
    EXPECT_FALSE(finished);
    rows.push_back(r);
  }
  void finish() override { finished = true; }

  bool opened = false;
  bool finished = false;
  std::vector<JobResult> rows;
};

TEST(BatchFile, SplitsLinesSkipsCommentsAndBlanks) {
  EXPECT_EQ(split_batch_line("  scenario=planewave   order=3 "),
            (std::vector<std::string>{"scenario=planewave", "order=3"}));
  EXPECT_TRUE(split_batch_line("# a comment").empty());
  EXPECT_TRUE(split_batch_line("   ").empty());
  EXPECT_EQ(split_batch_line("order=3 # trailing comment"),
            (std::vector<std::string>{"order=3"}));

  const std::string path = "/tmp/exastp_test_batch.txt";
  {
    std::ofstream out(path);
    out << "# header comment\n"
        << "scenario=planewave order=2\n"
        << "\n"
        << "scenario=gaussian t_end=0.1\n";
  }
  const auto jobs = parse_batch_file(path);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0],
            (std::vector<std::string>{"scenario=planewave", "order=2"}));
  EXPECT_EQ(jobs[1],
            (std::vector<std::string>{"scenario=gaussian", "t_end=0.1"}));
  std::remove(path.c_str());

  EXPECT_THROW(parse_batch_file("/tmp/no_such_batch_file.txt"),
               std::invalid_argument);
}

TEST(BatchFile, PathSuffixGoesBeforeTheExtension) {
  EXPECT_EQ(with_path_suffix("out.csv", "_j3"), "out_j3.csv");
  EXPECT_EQ(with_path_suffix("a/b.c/snap", "_j0"), "a/b.c/snap_j0");
  EXPECT_EQ(with_path_suffix("", "_j1"), "");
}

TEST(Gallery, SpecParsesKindAndOptionalPath) {
  EXPECT_EQ(parse_gallery_spec("csv").kind, "csv");
  EXPECT_TRUE(parse_gallery_spec("csv").path.empty());
  const GallerySpec spec = parse_gallery_spec("bin:/tmp/a:b.bin");
  EXPECT_EQ(spec.kind, "bin");
  EXPECT_EQ(spec.path, "/tmp/a:b.bin");
  try {
    parse_gallery_spec("sqlite:/tmp/x");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("jsonl"), std::string::npos);
  }
}

TEST(Gallery, RegistryListsTheBuiltins) {
  EXPECT_EQ(GalleryRegistry::instance().names(),
            (std::vector<std::string>{"bin", "csv", "dir", "jsonl"}));
}

JobResult sample_result() {
  JobResult r;
  r.id = 7;
  r.label = "order=3, \"quoted\"";
  r.status = JobStatus::kFailed;
  r.error = "bad thing,\nwith a newline";
  r.steps = 12;
  r.t = 0.25;
  r.l2_error = 1.5e-3;
  r.seconds = 0.125;
  r.from_cache = true;
  r.summary = "pde=acoustic order=3";
  return r;
}

TEST(Gallery, CsvQuotesFreeTextFields) {
  std::ostringstream out;
  auto gallery = make_gallery(parse_gallery_spec("csv"), &out);
  gallery->open();
  gallery->add(sample_result());
  gallery->finish();
  std::istringstream in(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "job,label,status,steps,t,l2_error,seconds,flops,cached,error");
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(row.rfind("7,\"order=3, \"\"quoted\"\"\",failed,12,", 0), 0u)
      << row;
}

TEST(Gallery, JsonlEscapesStrings) {
  std::ostringstream out;
  auto gallery = make_gallery(parse_gallery_spec("jsonl"), &out);
  gallery->open();
  gallery->add(sample_result());
  gallery->finish();
  const std::string line = out.str();
  EXPECT_NE(line.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\"cached\":true"), std::string::npos);
}

TEST(Gallery, BinRoundTrips) {
  const std::string path = "/tmp/exastp_test_gallery.bin";
  auto gallery = make_gallery(parse_gallery_spec("bin:" + path), nullptr);
  gallery->open();
  JobResult a = sample_result();
  JobResult b;
  b.id = 8;
  b.label = "plain";
  b.status = JobStatus::kDone;
  b.steps = 4;
  b.t = 0.5;
  b.l2_error = std::numeric_limits<double>::quiet_NaN();
  b.seconds = 0.01;
  gallery->add(a);
  gallery->add(b);
  gallery->finish();

  const auto rows = read_gallery_records(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].id, a.id);
  EXPECT_EQ(rows[0].label, a.label);
  EXPECT_EQ(rows[0].status, a.status);
  EXPECT_EQ(rows[0].error, a.error);
  EXPECT_EQ(rows[0].steps, a.steps);
  EXPECT_EQ(rows[0].t, a.t);
  EXPECT_EQ(rows[0].l2_error, a.l2_error);
  EXPECT_EQ(rows[0].seconds, a.seconds);
  EXPECT_EQ(rows[0].from_cache, a.from_cache);
  EXPECT_EQ(rows[0].summary, a.summary);
  EXPECT_EQ(rows[1].id, b.id);
  EXPECT_EQ(rows[1].status, JobStatus::kDone);
  EXPECT_TRUE(std::isnan(rows[1].l2_error));
  std::remove(path.c_str());

  EXPECT_THROW(make_gallery(parse_gallery_spec("bin"), nullptr),
               std::invalid_argument);
}

TEST(Gallery, DirWritesOneFilePerJobPlusIndex) {
  const std::string path = "/tmp/exastp_test_gallery_dir";
  auto gallery = make_gallery(parse_gallery_spec("dir:" + path), nullptr);
  gallery->open();
  gallery->add(sample_result());
  gallery->finish();
  const std::string job = slurp(path + "/job_0007.json");
  EXPECT_NE(job.find("\"job\":7"), std::string::npos);
  const std::string index = slurp(path + "/index.csv");
  EXPECT_EQ(index.rfind("job,label,status", 0), 0u);
  std::remove((path + "/job_0007.json").c_str());
  std::remove((path + "/index.csv").c_str());
}

// --- The pool itself --------------------------------------------------

/// The acceptance matrix: distinct configs through the pool at jobs=4 are
/// bitwise-identical to standalone runs of the same configs, including the
/// streamed receiver artifacts.
TEST(SimulationPool, ResultsBitwiseIdenticalToStandaloneRuns) {
  const std::vector<std::vector<std::string>> configs = {
      {"scenario=planewave", "order=2", "cells=3x3x3", "t_end=0.05"},
      {"scenario=planewave", "order=3", "cells=3x3x3", "t_end=0.05",
       "stepper=rk4"},
      {"scenario=gaussian", "order=3", "t_end=0.05"},
      {"scenario=planewave", "order=2", "cells=4x3x3", "t_end=0.04",
       "receivers=0.5,0.5,0.5",
       "output.receivers_bin=/tmp/exastp_pool_recv.bin"},
  };

  PoolOptions options;
  options.jobs = 4;
  SimulationPool pool(options);
  for (const auto& args : configs) pool.submit(args);
  const std::vector<JobResult> results = pool.run();
  ASSERT_EQ(results.size(), configs.size());

  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(results[i].label);
    ASSERT_EQ(results[i].status, JobStatus::kDone) << results[i].error;
    // The standalone run: same args, its own receiver path.
    std::vector<std::string> args = configs[i];
    for (std::string& arg : args)
      if (arg.rfind("output.receivers_bin=", 0) == 0)
        arg = "output.receivers_bin=/tmp/exastp_alone_recv.bin";
    Simulation sim = Simulation::from_args(args);
    const int steps = sim.run();
    EXPECT_EQ(results[i].steps, steps);
    EXPECT_EQ(results[i].t, sim.solver().time());  // exact, not approximate
    if (sim.has_exact_solution()) {
      EXPECT_EQ(results[i].l2_error, sim.l2_error());  // bitwise
    } else {
      EXPECT_TRUE(std::isnan(results[i].l2_error));
    }
  }
  // The job's receiver stream (suffixed _j3 by the pool) is byte-identical
  // to the standalone run's.
  EXPECT_EQ(slurp("/tmp/exastp_pool_recv_j3.bin"),
            slurp("/tmp/exastp_alone_recv.bin"));
  std::remove("/tmp/exastp_pool_recv_j3.bin");
  std::remove("/tmp/exastp_alone_recv.bin");
}

TEST(SimulationPool, MemoizationRunsEachUniqueConfigExactlyOnce) {
  const std::vector<std::string> a = {"scenario=planewave", "order=2",
                                      "cells=3x3x3", "t_end=0.04"};
  const std::vector<std::string> b = {"scenario=planewave", "order=3",
                                      "cells=3x3x3", "t_end=0.04"};
  PoolOptions options;
  options.jobs = 4;
  SimulationPool pool(options);
  pool.submit(a);
  pool.submit(b);
  pool.submit(a);  // duplicate of 0
  pool.submit(b);  // duplicate of 1
  pool.submit(a);  // duplicate of 0
  const auto results = pool.run();
  EXPECT_EQ(pool.runs_executed(), 2);

  ASSERT_EQ(results.size(), 5u);
  for (const JobResult& r : results)
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
  // 5 submissions, 2 unique configs: exactly 3 rows are cache hits (under
  // jobs=4 the owner of each config is whichever worker claimed it first,
  // not necessarily the lowest id).
  int cached = 0;
  for (const JobResult& r : results) cached += r.from_cache ? 1 : 0;
  EXPECT_EQ(cached, 3);
  // Duplicates carry the original's numbers bitwise.
  EXPECT_EQ(results[2].steps, results[0].steps);
  EXPECT_EQ(results[2].l2_error, results[0].l2_error);
  EXPECT_EQ(results[4].l2_error, results[0].l2_error);
  EXPECT_EQ(results[3].l2_error, results[1].l2_error);
  // A later batch on the same pool still remembers.
  pool.submit(a);
  const auto again = pool.run();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].from_cache);
  EXPECT_EQ(pool.runs_executed(), 2);
}

TEST(SimulationPool, ThreadCountDoesNotSplitTheMemoKey) {
  // Results are bitwise-identical for every thread count, so threads= is
  // excluded from the canonical key — the second job is a cache hit.
  SimulationPool pool;
  pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
               "t_end=0.04", "threads=1"});
  pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
               "t_end=0.04", "threads=2"});
  const auto results = pool.run();
  EXPECT_EQ(pool.runs_executed(), 1);
  EXPECT_TRUE(results[1].from_cache);
  EXPECT_EQ(results[0].l2_error, results[1].l2_error);
}

TEST(SimulationPool, OneFailingJobDoesNotKillTheBatch) {
  PoolOptions options;
  options.jobs = 2;
  SimulationPool pool(options);
  pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
               "t_end=0.04"});
  pool.submit({"scenario=no_such_scenario", "t_end=0.01"});
  pool.submit({"scenario=gaussian", "order=2", "t_end=0.04"});
  const auto results = pool.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, JobStatus::kDone);
  EXPECT_EQ(results[1].status, JobStatus::kFailed);
  EXPECT_NE(results[1].error.find("no_such_scenario"), std::string::npos);
  EXPECT_EQ(results[2].status, JobStatus::kDone);
}

TEST(SimulationPool, StopOnFailureSkipsTheQueueTail) {
  PoolOptions options;
  options.jobs = 1;
  options.stop_on_failure = true;
  SimulationPool pool(options);
  pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
               "t_end=0.04"});
  pool.submit({"scenario=no_such_scenario", "t_end=0.01"});
  pool.submit({"scenario=gaussian", "order=2", "t_end=0.04"});
  const auto results = pool.run();
  EXPECT_EQ(results[0].status, JobStatus::kDone);
  EXPECT_EQ(results[1].status, JobStatus::kFailed);
  EXPECT_EQ(results[2].status, JobStatus::kSkipped);
  EXPECT_EQ(pool.runs_executed(), 1);
}

TEST(SimulationPool, DuplicateConfigKeyFailsThatJobOnly) {
  SimulationPool pool;
  pool.submit({"scenario=planewave", "order=2", "order=3", "cells=3x3x3",
               "t_end=0.02"});
  pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
               "t_end=0.02"});
  const auto results = pool.run();
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_NE(results[0].error.find("duplicate config key \"order\""),
            std::string::npos);
  EXPECT_EQ(results[1].status, JobStatus::kDone);
}

TEST(SimulationPool, RejectsMpiBackendJobs) {
  SimulationPool pool;
  pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
               "t_end=0.02", "backend=mpi"});
  const auto results = pool.run();
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_NE(results[0].error.find("single-process"), std::string::npos);
}

TEST(SimulationPool, GalleryRowsStreamInIdOrderAtAnyConcurrency) {
  for (int jobs : {1, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    PoolOptions options;
    options.jobs = jobs;
    SimulationPool pool(options);
    // Mixed durations so completion order under jobs=4 differs from id
    // order: later jobs are cheaper than earlier ones.
    for (int order : {4, 3, 2, 2})
      pool.submit({"scenario=planewave", "order=" + std::to_string(order),
                   "cells=3x3x3", "t_end=0.0" + std::to_string(5 - order)});
    RecordingGallery gallery;
    const auto results = pool.run({&gallery});
    EXPECT_TRUE(gallery.finished);
    ASSERT_EQ(gallery.rows.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(gallery.rows[i].id, i);
      EXPECT_EQ(results[i].id, i);
    }
  }
}

TEST(SimulationPool, JobsShareTheKernelPrototypeCache) {
  const KernelCacheStats before = kernel_cache_stats();
  PoolOptions options;
  options.jobs = 2;
  options.memoize = false;  // force real runs — sharing is at kernel level
  SimulationPool pool(options);
  for (int i = 0; i < 4; ++i)
    pool.submit({"scenario=planewave", "order=2", "cells=3x3x3",
                 "t_end=0.02"});
  const auto results = pool.run();
  for (const JobResult& r : results)
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
  EXPECT_EQ(pool.runs_executed(), 4);
  const KernelCacheStats after = kernel_cache_stats();
  // All four jobs want the same (pde, variant, order, isa, family): at
  // most one build, at least three served from the shared prototype.
  EXPECT_LE(after.misses - before.misses, 1);
  EXPECT_GE(after.hits - before.hits, 3);
}

TEST(SimulationPool, BaseArgsApplyToEveryJob) {
  PoolOptions options;
  options.base_args = {"scenario=planewave", "cells=3x3x3", "t_end=0.04"};
  SimulationPool pool(options);
  pool.submit({"order=2"});
  pool.submit({"order=3"});
  const auto results = pool.run();
  ASSERT_EQ(results[0].status, JobStatus::kDone) << results[0].error;
  ASSERT_EQ(results[1].status, JobStatus::kDone) << results[1].error;
  // Higher order resolves the planewave better.
  EXPECT_LT(results[1].l2_error, results[0].l2_error);
}

}  // namespace
}  // namespace exastp
