// Anisotropic-mesh tests: non-cubic domains and per-dimension cell sizes
// exercise the inv_dx plumbing through every kernel variant, which a unit
// cube cannot catch (all three scalings identical).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/pde/advection.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/norms.h"

namespace exastp {
namespace {

constexpr double kPi = std::numbers::pi;

class AnisoVariantP : public ::testing::TestWithParam<StpVariant> {};

TEST_P(AnisoVariantP, DiagonalAdvectionOnStretchedGrid) {
  // Domain 2 x 1 x 0.5 with different cell counts per dimension: the three
  // inv_dx factors are all distinct (dx = 0.5, 0.25, 0.25 -> but cell
  // extents differ per dim). Periodic profile chosen to fit each extent.
  AdvectionPde pde;
  pde.velocity = {1.0, 0.5, 0.25};
  GridSpec grid;
  grid.cells = {4, 4, 2};
  grid.extent = {2.0, 1.0, 0.5};
  auto runtime = std::make_shared<PdeAdapter<AdvectionPde>>(pde);
  AderDgSolver solver(
      runtime, make_stp_kernel(pde, GetParam(), 4, host_best_isa()), grid);
  auto profile = [](const std::array<double, 3>& x) {
    return std::sin(kPi * x[0]) * std::cos(2.0 * kPi * x[1]) +
           0.3 * std::sin(4.0 * kPi * x[2]);
  };
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < AdvectionPde::kQuants; ++s) q[s] = profile(x);
      });
  solver.run_until(0.05);
  const double err = l2_error(
      solver, 0, [&](const std::array<double, 3>& x, double t) {
        return profile({x[0] - pde.velocity[0] * t,
                        x[1] - pde.velocity[1] * t,
                        x[2] - pde.velocity[2] * t});
      });
  EXPECT_LT(err, 5e-3) << variant_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, AnisoVariantP,
                         ::testing::Values(StpVariant::kGeneric,
                                           StpVariant::kLog,
                                           StpVariant::kSplitCk,
                                           StpVariant::kAosoaSplitCk,
                                           StpVariant::kSoaUfSplitCk),
                         [](const auto& info) {
                           return variant_name(info.param);
                         });

TEST(Anisotropic, ShiftedOriginDoesNotChangeTheSolution) {
  // Translating the domain must translate the solution exactly (the scheme
  // only sees reference coordinates).
  AdvectionPde pde;
  pde.velocity = {1.0, 0.0, 0.0};
  auto run_with_origin = [&](double ox) {
    GridSpec grid;
    grid.cells = {4, 1, 1};
    grid.origin = {ox, 0.0, 0.0};
    auto runtime = std::make_shared<PdeAdapter<AdvectionPde>>(pde);
    AderDgSolver solver(
        runtime,
        make_stp_kernel(pde, StpVariant::kSplitCk, 3, host_best_isa()),
        grid);
    solver.set_initial_condition(
        [&](const std::array<double, 3>& x, double* q) {
          for (int s = 0; s < AdvectionPde::kQuants; ++s)
            q[s] = std::sin(2.0 * kPi * (x[0] - ox));
        });
    solver.run_until(0.03);
    return solver.sample({ox + 0.37, 0.5, 0.5}, 0);
  };
  EXPECT_NEAR(run_with_origin(0.0), run_with_origin(5.0), 1e-12);
}

TEST(Anisotropic, StableDtUsesTheSmallestCellExtent) {
  AdvectionPde pde;
  auto dt_for = [&](std::array<double, 3> extent) {
    GridSpec grid;
    grid.cells = {2, 2, 2};
    grid.extent = extent;
    auto runtime = std::make_shared<PdeAdapter<AdvectionPde>>(pde);
    AderDgSolver solver(
        runtime,
        make_stp_kernel(pde, StpVariant::kGeneric, 3, host_best_isa()),
        grid);
    solver.set_initial_condition(
        [](const std::array<double, 3>&, double* q) {
          for (int s = 0; s < AdvectionPde::kQuants; ++s) q[s] = 1.0;
        });
    return solver.stable_dt();
  };
  // Shrinking one dimension alone must shrink dt proportionally.
  EXPECT_NEAR(dt_for({1, 1, 1}) / dt_for({1, 1, 0.25}), 4.0, 1e-10);
}

}  // namespace
}  // namespace exastp
