// Physics-level integration tests: exact elastic plane waves (P and S),
// kernel linearity (the predictor is a linear operator in the wave state),
// Gauss-Lobatto end-to-end runs, and the LOH1 scenario plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/pde/elastic.h"
#include "exastp/scenarios/loh1.h"
#include "exastp/solver/norms.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

constexpr double kPi = std::numbers::pi;

// --------------------------------------------------------------------------
// Elastic plane waves. For propagation along x in an isotropic medium:
//  P wave: vx = f(x - cp t),  sxx = -rho cp f,  syy = szz = -lambda/cp f
//          (from d(sxx)/dt = (lam+2mu) d(vx)/dx etc.)
//  S wave: vy = f(x - cs t),  sxy = -rho cs f.
// We verify both propagate at their design speeds through the full solver.

struct ElasticMaterial {
  double rho = 2.7, cp = 6.0, cs = 3.464;
  double lambda() const { return rho * (cp * cp - 2.0 * cs * cs); }
  double mu() const { return rho * cs * cs; }
};

AderDgSolver make_elastic_solver(StpVariant variant, int order, int cells,
                                 NodeFamily family) {
  ElasticPde pde;
  GridSpec grid;
  grid.cells = {cells, 1, 1};
  auto runtime = std::make_shared<PdeAdapter<ElasticPde>>(pde);
  StpKernel kernel = make_stp_kernel(pde, variant, order, host_best_isa(),
                                     family);
  return AderDgSolver(runtime, std::move(kernel), grid, family);
}

struct WaveCase {
  StpVariant variant;
  NodeFamily family;
};

void PrintTo(const WaveCase& c, std::ostream* os) {
  *os << variant_name(c.variant)
      << (c.family == NodeFamily::kGaussLegendre ? "_legendre" : "_lobatto");
}

class ElasticWaveP : public ::testing::TestWithParam<WaveCase> {};

TEST_P(ElasticWaveP, PWavePropagatesAtCp) {
  const ElasticMaterial mat;
  auto solver = make_elastic_solver(GetParam().variant, 5, 6,
                                    GetParam().family);
  auto profile = [](double xi) { return std::sin(2.0 * kPi * xi); };
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        const double f = profile(x[0]);
        for (int s = 0; s < ElasticPde::kVars; ++s) q[s] = 0.0;
        q[ElasticPde::kVx] = f;
        q[ElasticPde::kSxx] = -mat.rho * mat.cp * f;
        q[ElasticPde::kSyy] = -mat.lambda() / mat.cp * f;
        q[ElasticPde::kSzz] = -mat.lambda() / mat.cp * f;
        q[ElasticPde::kRho] = mat.rho;
        q[ElasticPde::kCp] = mat.cp;
        q[ElasticPde::kCs] = mat.cs;
      });
  const double t_end = 0.02;
  solver.run_until(t_end);
  const double err = l2_error(
      solver, ElasticPde::kVx,
      [&](const std::array<double, 3>& x, double t) {
        return profile(x[0] - mat.cp * t);
      });
  EXPECT_LT(err, 2e-4) << "P wave did not travel at cp";
}

TEST_P(ElasticWaveP, SWavePropagatesAtCs) {
  const ElasticMaterial mat;
  auto solver = make_elastic_solver(GetParam().variant, 5, 6,
                                    GetParam().family);
  auto profile = [](double xi) { return std::cos(2.0 * kPi * xi); };
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        const double f = profile(x[0]);
        for (int s = 0; s < ElasticPde::kVars; ++s) q[s] = 0.0;
        q[ElasticPde::kVy] = f;
        q[ElasticPde::kSxy] = -mat.rho * mat.cs * f;
        q[ElasticPde::kRho] = mat.rho;
        q[ElasticPde::kCp] = mat.cp;
        q[ElasticPde::kCs] = mat.cs;
      });
  const double t_end = 0.03;
  solver.run_until(t_end);
  const double err = l2_error(
      solver, ElasticPde::kVy,
      [&](const std::array<double, 3>& x, double t) {
        return profile(x[0] - mat.cs * t);
      });
  EXPECT_LT(err, 2e-4) << "S wave did not travel at cs";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElasticWaveP,
    ::testing::Values(
        WaveCase{StpVariant::kGeneric, NodeFamily::kGaussLegendre},
        WaveCase{StpVariant::kLog, NodeFamily::kGaussLegendre},
        WaveCase{StpVariant::kSplitCk, NodeFamily::kGaussLegendre},
        WaveCase{StpVariant::kAosoaSplitCk, NodeFamily::kGaussLegendre},
        WaveCase{StpVariant::kSplitCk, NodeFamily::kGaussLobatto},
        WaveCase{StpVariant::kAosoaSplitCk, NodeFamily::kGaussLobatto}));

// --------------------------------------------------------------------------
// Predictor linearity: for fixed parameters the CK predictor is a linear
// map of the wave state. qavg(a*q1 + q2) == a*qavg(q1) + qavg(q2).

class LinearityP : public ::testing::TestWithParam<StpVariant> {};

TEST_P(LinearityP, PredictorIsLinearInWaveState) {
  ElasticPde pde;
  const int order = 4;
  StpKernel kernel =
      make_stp_kernel(pde, GetParam(), order, host_best_isa());
  const AosLayout& aos = kernel.layout();

  auto fill = [&](AlignedVector& q, int seed) {
    q.assign(aos.size(), 0.0);
    for (int k3 = 0; k3 < order; ++k3)
      for (int k2 = 0; k2 < order; ++k2)
        for (int k1 = 0; k1 < order; ++k1) {
          double* node = q.data() + aos.idx(k3, k2, k1, 0);
          for (int s = 0; s < ElasticPde::kVars; ++s)
            node[s] = std::sin(0.3 * (k1 + 2 * k2 + 3 * k3) + s + seed);
          node[ElasticPde::kRho] = 2.7;
          node[ElasticPde::kCp] = 6.0;
          node[ElasticPde::kCs] = 3.4;
        }
  };
  AlignedVector q1, q2, qc;
  fill(q1, 0);
  fill(q2, 5);
  const double alpha = -1.3;
  qc = q1;
  for (int k3 = 0; k3 < order; ++k3)
    for (int k2 = 0; k2 < order; ++k2)
      for (int k1 = 0; k1 < order; ++k1)
        for (int s = 0; s < ElasticPde::kVars; ++s) {
          const std::size_t i = aos.idx(k3, k2, k1, s);
          qc[i] = alpha * q1[i] + q2[i];
        }

  auto run = [&](const AlignedVector& q) {
    AlignedVector qavg(aos.size()), f0(aos.size()), f1(aos.size()),
        f2(aos.size());
    StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};
    kernel.run(q.data(), 1e-3, {4.0, 4.0, 4.0}, nullptr, out);
    return qavg;
  };
  AlignedVector r1 = run(q1), r2 = run(q2), rc = run(qc);
  for (int k3 = 0; k3 < order; ++k3)
    for (int k2 = 0; k2 < order; ++k2)
      for (int k1 = 0; k1 < order; ++k1)
        for (int s = 0; s < ElasticPde::kVars; ++s) {
          const std::size_t i = aos.idx(k3, k2, k1, s);
          ASSERT_NEAR(rc[i], alpha * r1[i] + r2[i], 1e-10)
              << "not linear at " << i;
        }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, LinearityP,
                         ::testing::Values(StpVariant::kGeneric,
                                           StpVariant::kLog,
                                           StpVariant::kSplitCk,
                                           StpVariant::kAosoaSplitCk),
                         [](const auto& info) {
                           return variant_name(info.param);
                         });

// --------------------------------------------------------------------------
// LOH1 scenario plumbing.

TEST(Loh1, MaterialsSplitAtTheInterface) {
  Loh1Config config;
  config.order = 3;
  config.cells = {2, 2, 4};
  auto solver = make_loh1_solver(config, host_best_isa());
  // Sample material above and below the interface plane.
  const double above = solver->sample({4.0, 4.0, 0.5}, ElasticPde::kCp);
  const double below = solver->sample({4.0, 4.0, 6.0}, ElasticPde::kCp);
  EXPECT_NEAR(above, config.layer_cp, 1e-9);
  EXPECT_NEAR(below, config.half_cp, 1e-9);
}

TEST(Loh1, SourceRadiatesIntoBothLayers) {
  Loh1Config config;
  config.order = 3;
  config.cells = {2, 2, 2};
  config.source_frequency = 2.0;
  config.source_delay = 0.6;
  auto solver = make_loh1_solver(config, host_best_isa());
  solver->run_until(1.2);
  double layer_energy = l2_error(
      *solver, ElasticPde::kVz,
      [](const std::array<double, 3>&, double) { return 0.0; });
  EXPECT_GT(layer_energy, 1e-8) << "no wavefield produced";
  for (int s = 0; s < ElasticPde::kVars; ++s) {
    const double v = solver->sample({5.0, 4.0, 5.0}, s);
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Loh1, AllVariantsProduceTheSameSeismogramSample) {
  double reference = 0.0;
  for (StpVariant v : kAllVariants) {
    Loh1Config config;
    config.order = 3;
    config.cells = {2, 2, 2};
    config.variant = v;
    config.source_delay = 0.5;
    auto solver = make_loh1_solver(config, host_best_isa());
    solver->run_until(0.8);
    const double sample =
        solver->sample(config.receiver_position, ElasticPde::kVz);
    if (v == StpVariant::kGeneric) {
      reference = sample;
    } else {
      EXPECT_NEAR(sample, reference,
                  1e-8 * std::max(1.0, std::abs(reference)))
          << variant_name(v);
    }
  }
}

}  // namespace
}  // namespace exastp
