// Tests for src/perf/trace_model: the twins must report exactly the FLOPs
// the real kernels count, the footprints the real kernels allocate, and
// cache behaviour that reproduces the paper's qualitative claims.
#include <gtest/gtest.h>

#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/perf/trace_model.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

// Runs the real kernel once and returns its FlopCounter delta.
template <class Pde>
FlopCounter real_kernel_flops(StpVariant variant, int order, Isa isa) {
  StpKernel kernel = make_stp_kernel(Pde{}, variant, order, isa);
  const AosLayout& aos = kernel.layout();
  AlignedVector q(aos.size(), 0.0), qavg(aos.size(), 0.0);
  std::array<AlignedVector, 3> favg;
  for (auto& f : favg) f.assign(aos.size(), 0.0);
  // Physically sane constant state (avoid division hazards).
  const int n = aos.n;
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        double* node = q.data() + aos.idx(k3, k2, k1, 0);
        for (int s = 0; s < Pde::kVars; ++s) node[s] = 0.1 * s;
        if constexpr (std::is_same_v<Pde, CurvilinearElasticPde>) {
          node[Pde::kRho] = 2.7;
          node[Pde::kCp] = 6.0;
          node[Pde::kCs] = 3.4;
          for (int r = 0; r < 3; ++r) node[Pde::kMetric + 3 * r + r] = 1.0;
        } else if constexpr (std::is_same_v<Pde, AcousticPde>) {
          node[Pde::kRho] = 1.0;
          node[Pde::kC] = 2.0;
        }
      }
  StpOutputs out{qavg.data(),
                 {favg[0].data(), favg[1].data(), favg[2].data()}};
  FlopSection section;
  kernel.run(q.data(), 1e-3, {4.0, 4.0, 4.0}, nullptr, out);
  return section.delta();
}

struct TwinCase {
  StpVariant variant;
  int order;
};

void PrintTo(const TwinCase& c, std::ostream* os) {
  *os << variant_name(c.variant) << "_n" << c.order;
}

class TwinFlopP : public ::testing::TestWithParam<TwinCase> {};

TEST_P(TwinFlopP, TwinFlopsMatchRealCurvilinearKernel) {
  const auto [variant, order] = GetParam();
  const Isa isa = host_best_isa();
  FlopCounter real = real_kernel_flops<CurvilinearElasticPde>(variant, order,
                                                              isa);
  CacheSim sim = CacheSim::skylake_sp();
  TwinResult twin = trace_stp(variant, order,
                              twin_pde<CurvilinearElasticPde>(), isa, sim,
                              /*warmup=*/0, /*reps=*/1);
  EXPECT_EQ(twin.flops.total(), real.total()) << "total FLOPs diverge";
  for (int c = 0; c < kNumWidthClasses; ++c)
    EXPECT_EQ(twin.flops.flops[c], real.flops[c])
        << "width class " << c << " diverges";
}

TEST_P(TwinFlopP, TwinFootprintMatchesKernelWorkspace) {
  const auto [variant, order] = GetParam();
  const Isa isa = host_best_isa();
  StpKernel kernel =
      make_stp_kernel(CurvilinearElasticPde{}, variant, order, isa);
  CacheSim sim = CacheSim::skylake_sp();
  TwinResult twin = trace_stp(variant, order,
                              twin_pde<CurvilinearElasticPde>(), isa, sim, 0,
                              1);
  EXPECT_EQ(twin.workspace_bytes, kernel.workspace_bytes());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwinFlopP,
    ::testing::Values(TwinCase{StpVariant::kGeneric, 3},
                      TwinCase{StpVariant::kGeneric, 6},
                      TwinCase{StpVariant::kLog, 3},
                      TwinCase{StpVariant::kLog, 6},
                      TwinCase{StpVariant::kLog, 9},
                      TwinCase{StpVariant::kSplitCk, 3},
                      TwinCase{StpVariant::kSplitCk, 6},
                      TwinCase{StpVariant::kSplitCk, 9},
                      TwinCase{StpVariant::kAosoaSplitCk, 3},
                      TwinCase{StpVariant::kAosoaSplitCk, 6},
                      TwinCase{StpVariant::kAosoaSplitCk, 9}));

TEST(TraceModel, AcousticTwinTotalsMatchToo) {
  // Second PDE to pin the parameterization (quants/flux/ncp flops).
  for (StpVariant v : kAllVariants) {
    // The rejected SoA-UF ablation variant has no trace twin.
    if (v == StpVariant::kSoaUfSplitCk) continue;
    FlopCounter real = real_kernel_flops<AcousticPde>(v, 4, host_best_isa());
    CacheSim sim = CacheSim::skylake_sp();
    TwinResult twin =
        trace_stp(v, 4, twin_pde<AcousticPde>(), host_best_isa(), sim, 0, 1);
    EXPECT_EQ(twin.flops.total(), real.total()) << variant_name(v);
  }
}

TEST(TraceModel, LogStallsExceedSplitCkAtHighOrder) {
  // The paper's central memory claim (Figs. 6/10): from order ~6 the LoG
  // kernel's working set overflows L2 and its stall fraction stays high,
  // while SplitCK's keeps decreasing.
  const TwinPde pde = twin_pde<CurvilinearElasticPde>();
  StallModel model;
  for (int order : {8, 10}) {
    CacheSim sim_log = CacheSim::skylake_sp();
    TwinResult log =
        trace_stp(StpVariant::kLog, order, pde, Isa::kAvx512, sim_log, 1, 2);
    CacheSim sim_sp = CacheSim::skylake_sp();
    TwinResult sp = trace_stp(StpVariant::kSplitCk, order, pde, Isa::kAvx512,
                              sim_sp, 1, 2);
    const double stall_log = model.stall_fraction(log.cache, log.flops.flops);
    const double stall_sp = model.stall_fraction(sp.cache, sp.flops.flops);
    EXPECT_GT(stall_log, stall_sp) << "order " << order;
  }
}

TEST(TraceModel, SplitCkStaysBoundedWhileLogEscalates) {
  // Paper Figs. 6/10: LoG's stalls jump when its space-time storage
  // overflows L2 (order ~6) and keep climbing, while SplitCK stays in a
  // bounded band across the whole sweep. (Our model holds SplitCK flat
  // rather than gently declining — see EXPERIMENTS.md.)
  const TwinPde pde = twin_pde<CurvilinearElasticPde>();
  StallModel model;
  auto stall = [&](StpVariant v, int order) {
    CacheSim sim = CacheSim::skylake_sp();
    TwinResult r = trace_stp(v, order, pde, Isa::kAvx512, sim, 1, 2, true);
    return model.stall_fraction(r.cache, r.flops.flops);
  };
  const double sp4 = stall(StpVariant::kSplitCk, 4);
  const double sp11 = stall(StpVariant::kSplitCk, 11);
  EXPECT_LT(std::abs(sp11 - sp4), 0.15) << "SplitCK band too wide";
  const double log4 = stall(StpVariant::kLog, 4);
  const double log11 = stall(StpVariant::kLog, 11);
  EXPECT_GT(log11 - log4, 0.15) << "LoG must escalate past the L2 overflow";
  EXPECT_GT(log11, sp11 + 0.15);
}

TEST(TraceModel, AosoaShowsOrder9PaddingBump) {
  // Sec. V-A: order 8 needs no x-line padding under AVX-512, order 9 pads
  // 9 -> 16; the extra traffic and FLOPs are visible as a stall bump.
  const TwinPde pde = twin_pde<CurvilinearElasticPde>();
  StallModel model;
  auto stall = [&](int order) {
    CacheSim sim = CacheSim::skylake_sp();
    TwinResult r = trace_stp(StpVariant::kAosoaSplitCk, order, pde,
                             Isa::kAvx512, sim, 1, 2, true);
    return model.stall_fraction(r.cache, r.flops.flops);
  };
  EXPECT_GT(stall(9), stall(8));
}

TEST(TraceModel, WarmupRepsAreExcludedFromStats) {
  const TwinPde pde = twin_pde<AcousticPde>();
  CacheSim sim1 = CacheSim::skylake_sp();
  TwinResult one = trace_stp(StpVariant::kSplitCk, 4, pde, Isa::kAvx512,
                             sim1, 0, 1);
  CacheSim sim2 = CacheSim::skylake_sp();
  TwinResult warm = trace_stp(StpVariant::kSplitCk, 4, pde, Isa::kAvx512,
                              sim2, 1, 1);
  // A warm workspace produces strictly fewer misses than a cold one.
  EXPECT_LT(warm.cache.misses[1] + warm.cache.misses[2],
            one.cache.misses[1] + one.cache.misses[2] + 1);
  EXPECT_EQ(warm.flops.total(), one.flops.total());
}

TEST(TraceModel, PreservesCallersFlopCounter) {
  FlopCounter::instance().reset();
  FlopCounter::instance().add(WidthClass::k256, 1234);
  CacheSim sim = CacheSim::skylake_sp();
  trace_stp(StpVariant::kLog, 4, twin_pde<AcousticPde>(), Isa::kAvx512, sim);
  EXPECT_EQ(FlopCounter::instance().flops[2], 1234u);
  FlopCounter::instance().reset();
}

TEST(TraceModel, RejectsBadArguments) {
  CacheSim sim = CacheSim::skylake_sp();
  EXPECT_THROW(trace_stp(StpVariant::kLog, 1, twin_pde<AcousticPde>(),
                         Isa::kAvx512, sim),
               std::invalid_argument);
  TwinPde empty;
  EXPECT_THROW(
      trace_stp(StpVariant::kLog, 4, empty, Isa::kAvx512, sim),
      std::invalid_argument);
}

}  // namespace
}  // namespace exastp
