// Direct unit tests for the ISA-dispatched element-wise primitives
// (src/gemm/vecops.h) — previously only covered through the kernels.
#include <gtest/gtest.h>

#include <random>

#include "exastp/common/aligned.h"
#include "exastp/gemm/vecops.h"
#include "exastp/perf/flop_count.h"

namespace exastp {
namespace {

class VecOpsP : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!host_supports(GetParam())) GTEST_SKIP();
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    x_.resize(kN);
    y_.resize(kN);
    for (long i = 0; i < kN; ++i) {
      x_[i] = dist(rng);
      y_[i] = dist(rng);
    }
  }

  static constexpr long kN = 1003;  // odd length exercises the remainder
  AlignedVector x_, y_;
};

TEST_P(VecOpsP, AxpyMatchesReference) {
  AlignedVector got = y_;
  vec_axpy(GetParam(), kN, 1.75, x_.data(), got.data());
  for (long i = 0; i < kN; ++i)
    EXPECT_NEAR(got[i], y_[i] + 1.75 * x_[i], 1e-14) << i;
}

TEST_P(VecOpsP, ScaleMatchesReference) {
  AlignedVector got(kN, -9.0);
  vec_scale(GetParam(), kN, -0.5, x_.data(), got.data());
  for (long i = 0; i < kN; ++i) EXPECT_EQ(got[i], -0.5 * x_[i]);
}

TEST_P(VecOpsP, AddMatchesReference) {
  AlignedVector got = y_;
  vec_add(GetParam(), kN, x_.data(), got.data());
  for (long i = 0; i < kN; ++i) EXPECT_EQ(got[i], y_[i] + x_[i]);
}

TEST_P(VecOpsP, ZeroAndCopyDoNotCountFlops) {
  AlignedVector got(kN, 1.0);
  FlopSection section;
  vec_zero(kN, got.data());
  vec_copy(kN, x_.data(), got.data());
  EXPECT_EQ(section.delta().total(), 0u);
  for (long i = 0; i < kN; ++i) EXPECT_EQ(got[i], x_[i]);
}

TEST_P(VecOpsP, FlopAccounting) {
  AlignedVector got = y_;
  FlopSection section;
  vec_axpy(GetParam(), kN, 2.0, x_.data(), got.data());
  EXPECT_EQ(section.delta().total(), 2u * kN);
  FlopSection section2;
  vec_scale(GetParam(), kN, 2.0, x_.data(), got.data());
  vec_add(GetParam(), kN, x_.data(), got.data());
  EXPECT_EQ(section2.delta().total(), 2u * kN);
}

TEST_P(VecOpsP, RemainderElementsCountAsScalar) {
  AlignedVector got = y_;
  FlopSection section;
  vec_add(GetParam(), kN, x_.data(), got.data());
  const FlopCounter d = section.delta();
  const int w = vector_width(GetParam());
  const long packed = kN / w * w;
  EXPECT_EQ(d.flops[static_cast<int>(packed_width_class(GetParam()))],
            static_cast<std::uint64_t>(packed));
  EXPECT_EQ(d.flops[static_cast<int>(WidthClass::kScalar)],
            static_cast<std::uint64_t>(kN - packed));
}

TEST_P(VecOpsP, ZeroLengthIsANoop) {
  AlignedVector got = y_;
  vec_axpy(GetParam(), 0, 3.0, x_.data(), got.data());
  EXPECT_EQ(got, y_);
  EXPECT_THROW(vec_axpy(GetParam(), -1, 3.0, x_.data(), got.data()),
               std::invalid_argument);
}

TEST_P(VecOpsP, IsaPathsAgreeWithBaseline) {
  // The wide paths contract multiply+add into FMAs, so results may differ
  // from the non-FMA baseline by one rounding; nothing more.
  AlignedVector a = y_, b = y_;
  vec_axpy(Isa::kScalar, kN, 0.3, x_.data(), a.data());
  vec_axpy(GetParam(), kN, 0.3, x_.data(), b.data());
  // Tolerance: one ulp of the operand magnitudes (cancellation can make the
  // error large relative to a small result).
  for (long i = 0; i < kN; ++i)
    EXPECT_NEAR(a[i], b[i],
                5e-16 * (std::abs(y_[i]) + 0.3 * std::abs(x_[i])) + 1e-18)
        << i;
}

INSTANTIATE_TEST_SUITE_P(AllIsas, VecOpsP,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const auto& info) { return isa_name(info.param); });

}  // namespace
}  // namespace exastp
