// Tests for src/common: aligned allocation, padding, ISA queries, Taylor
// coefficients, check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "exastp/common/aligned.h"
#include "exastp/common/check.h"
#include "exastp/common/simd.h"
#include "exastp/common/taylor.h"

namespace exastp {
namespace {

TEST(Aligned, VectorStorageIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u)
        << "n=" << n;
  }
}

TEST(Aligned, PadToRoundsUpToMultiple) {
  EXPECT_EQ(pad_to(1, 8), 8);
  EXPECT_EQ(pad_to(8, 8), 8);
  EXPECT_EQ(pad_to(9, 8), 16);
  EXPECT_EQ(pad_to(21, 8), 24);  // the paper's m=21 elastic benchmark
  EXPECT_EQ(pad_to(21, 4), 24);
  EXPECT_EQ(pad_to(5, 1), 5);
}

TEST(Aligned, AllocatorRejectsOverflow) {
  AlignedAllocator<double> alloc;
  EXPECT_THROW(alloc.allocate(std::numeric_limits<std::size_t>::max()),
               std::bad_alloc);
}

TEST(Simd, VectorWidths) {
  EXPECT_EQ(vector_width(Isa::kScalar), 1);
  EXPECT_EQ(vector_width(Isa::kAvx2), 4);
  EXPECT_EQ(vector_width(Isa::kAvx512), 8);
}

TEST(Simd, ScalarAlwaysSupported) {
  EXPECT_TRUE(host_supports(Isa::kScalar));
}

TEST(Simd, BestIsaIsSupported) {
  EXPECT_TRUE(host_supports(host_best_isa()));
}

TEST(Simd, Names) {
  EXPECT_EQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_EQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_EQ(isa_name(Isa::kAvx512), "avx512");
}

TEST(Taylor, MatchesFactorialFormula) {
  const double dt = 0.37;
  auto c = taylor_coefficients(dt, 6);
  double fact = 1.0;
  double pow = dt;
  for (int o = 0; o < 6; ++o) {
    fact *= (o + 1);
    EXPECT_NEAR(c[o], pow / fact, 1e-18 + 1e-15 * c[o]) << "o=" << o;
    pow *= dt;
  }
}

TEST(Taylor, SumsToExpMinusOne) {
  // sum_{o>=0} dt^{o+1}/(o+1)! = e^dt - 1; with 14 terms at dt=0.5 the
  // truncation error is far below double precision.
  const double dt = 0.5;
  auto c = taylor_coefficients(dt, 14);
  double sum = 0.0;
  for (int o = 0; o < 14; ++o) sum += c[o];
  EXPECT_NEAR(sum, std::exp(dt) - 1.0, 1e-14);
}

TEST(Taylor, HandlesZeroTerms) {
  auto c = taylor_coefficients(0.1, 0);
  EXPECT_EQ(c[0], 0.0);
}

TEST(Check, ThrowsWithContext) {
  try {
    EXASTP_CHECK_MSG(false, "context message");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(EXASTP_CHECK(1 + 1 == 2));
}

}  // namespace
}  // namespace exastp
