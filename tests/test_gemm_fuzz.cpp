// Property-based fuzz tests for the mini-GEMM library: 48 randomized
// (shape, leading-dimension, ISA, mode) configurations per run, each checked
// against the reference triple loop. Complements the curated shape sweep in
// test_gemm.cpp.
#include <gtest/gtest.h>

#include <random>

#include "exastp/common/aligned.h"
#include "exastp/gemm/gemm.h"

namespace exastp {
namespace {

class GemmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GemmFuzz, RandomShapeMatchesReference) {
  std::mt19937 rng(GetParam() * 7919 + 13);
  std::uniform_int_distribution<int> dim(1, 40);
  std::uniform_int_distribution<int> extra(0, 12);
  std::uniform_int_distribution<int> mode(0, 3);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> alpha_dist(-3.0, 3.0);

  const int m = dim(rng), n = dim(rng), k = dim(rng);
  const int lda = k + extra(rng), ldb = n + extra(rng), ldc = n + extra(rng);
  Isa isa = Isa::kScalar;
  switch (GetParam() % 3) {
    case 1: isa = Isa::kAvx2; break;
    case 2: isa = Isa::kAvx512; break;
    default: break;
  }
  if (!host_supports(isa)) GTEST_SKIP();

  AlignedVector a(static_cast<std::size_t>(m) * lda);
  AlignedVector b(static_cast<std::size_t>(k) * ldb);
  AlignedVector c(static_cast<std::size_t>(m) * ldc);
  for (auto& x : a) x = val(rng);
  for (auto& x : b) x = val(rng);
  for (auto& x : c) x = val(rng);

  const int which = mode(rng);
  const double alpha = which >= 2 ? alpha_dist(rng) : 1.0;
  const bool accumulate = (which % 2) == 1;

  AlignedVector expect = c;
  gemm_reference(accumulate, alpha, m, n, k, a.data(), lda, b.data(), ldb,
                 expect.data(), ldc);
  AlignedVector got = c;
  switch (which) {
    case 0:
      gemm_set(isa, m, n, k, a.data(), lda, b.data(), ldb, got.data(), ldc);
      break;
    case 1:
      gemm_acc(isa, m, n, k, a.data(), lda, b.data(), ldb, got.data(), ldc);
      break;
    case 2:
      gemm_set_scaled(isa, alpha, m, n, k, a.data(), lda, b.data(), ldb,
                      got.data(), ldc);
      break;
    default:
      gemm_acc_scaled(isa, alpha, m, n, k, a.data(), lda, b.data(), ldb,
                      got.data(), ldc);
      break;
  }
  // Tolerance scaled by the contraction length and operand magnitudes.
  const double tol = 1e-13 * k * 4.0 * std::abs(alpha) + 1e-14;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j)
      ASSERT_NEAR(got[static_cast<std::size_t>(i) * ldc + j],
                  expect[static_cast<std::size_t>(i) * ldc + j], tol)
          << "m=" << m << " n=" << n << " k=" << k << " ld=" << lda << "/"
          << ldb << "/" << ldc << " isa=" << isa_name(isa)
          << " mode=" << which << " at (" << i << "," << j << ")";
    // The ld gap beyond column n must be untouched.
    for (int j = n; j < ldc; ++j)
      ASSERT_EQ(got[static_cast<std::size_t>(i) * ldc + j],
                c[static_cast<std::size_t>(i) * ldc + j])
          << "wrote past n";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzz, ::testing::Range(0, 48));

}  // namespace
}  // namespace exastp
