// Tests for the shared STP infrastructure: parameter-row refresh helpers,
// the type-erased StpKernel handle, Taylor coefficient variants, and the
// rejected-variant trace restriction.
#include <gtest/gtest.h>

#include <cmath>

#include "exastp/common/taylor.h"
#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/perf/trace_model.h"

namespace exastp {
namespace {

TEST(ParamRefresh, AosCopiesOnlyParameterRows) {
  AosLayout aos(3, 5, Isa::kAvx512);
  AlignedVector q(aos.size(), 0.0), dst(aos.size(), 0.0);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 1.0 + i;
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = -double(i);
  const int vars = 3;  // rows 3,4 are parameters
  refresh_aos_param_rows(aos, vars, q.data(), dst.data());
  for (int k3 = 0; k3 < 3; ++k3)
    for (int k2 = 0; k2 < 3; ++k2)
      for (int k1 = 0; k1 < 3; ++k1)
        for (int s = 0; s < 5; ++s) {
          const std::size_t i = aos.idx(k3, k2, k1, s);
          if (s < vars) {
            EXPECT_EQ(dst[i], -double(i)) << "wave row must be untouched";
          } else {
            EXPECT_EQ(dst[i], q[i]) << "parameter row must be refreshed";
          }
        }
}

TEST(ParamRefresh, AosNoParamsIsANoop) {
  AosLayout aos(2, 4, Isa::kScalar);
  AlignedVector q(aos.size(), 7.0), dst(aos.size(), 3.0);
  refresh_aos_param_rows(aos, 4, q.data(), dst.data());
  for (double v : dst) EXPECT_EQ(v, 3.0);
}

TEST(ParamRefresh, AosoaCopiesWholePaddedLines) {
  AosoaLayout aosoa(3, 4, Isa::kAvx512);
  AlignedVector q(aosoa.size(), 0.0), dst(aosoa.size(), -1.0);
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = 0.5 * i;
  refresh_aosoa_param_rows(aosoa, 2, q.data(), dst.data());
  for (int k3 = 0; k3 < 3; ++k3)
    for (int k2 = 0; k2 < 3; ++k2)
      for (int s = 0; s < 4; ++s)
        for (int k1 = 0; k1 < aosoa.n_pad; ++k1) {
          const std::size_t i = aosoa.idx(k3, k2, s, k1);
          if (s < 2) {
            EXPECT_EQ(dst[i], -1.0);
          } else {
            EXPECT_EQ(dst[i], q[i]);
          }
        }
}

TEST(StpKernelHandle, ExposesVariantLayoutAndFootprint) {
  AcousticPde pde;
  StpKernel k = make_stp_kernel(pde, StpVariant::kSplitCk, 5, Isa::kAvx512);
  EXPECT_EQ(k.variant(), StpVariant::kSplitCk);
  EXPECT_EQ(k.layout().n, 5);
  EXPECT_EQ(k.layout().m, AcousticPde::kQuants);
  EXPECT_EQ(k.layout().m_pad, 8);
  EXPECT_GT(k.workspace_bytes(), 0u);
  EXPECT_TRUE(static_cast<bool>(k));
  EXPECT_FALSE(static_cast<bool>(StpKernel{}));
}

TEST(StpKernelHandle, GenericUsesUnpaddedLayoutRegardlessOfIsa) {
  AcousticPde pde;
  StpKernel k = make_stp_kernel(pde, StpVariant::kGeneric, 4, Isa::kAvx512);
  EXPECT_EQ(k.layout().m_pad, AcousticPde::kQuants);
}

TEST(VariantNames, RoundTripThroughParser) {
  for (StpVariant v :
       {StpVariant::kGeneric, StpVariant::kLog, StpVariant::kSplitCk,
        StpVariant::kAosoaSplitCk, StpVariant::kSoaUfSplitCk})
    EXPECT_EQ(parse_variant(variant_name(v)), v);
}

TEST(TaylorVariants, AverageTimesDtEqualsIntegralCoefficients) {
  const double dt = 0.37;
  auto avg = time_average_coefficients(dt, 8);
  auto integral = taylor_coefficients(dt, 8);
  for (int o = 0; o < 8; ++o)
    EXPECT_NEAR(avg[o] * dt, integral[o], 1e-16 + 1e-14 * integral[o]);
  EXPECT_DOUBLE_EQ(avg[0], 1.0) << "o=0 average weight must be exactly 1";
}

TEST(TraceModelRestriction, RejectedVariantHasNoTwin) {
  CacheSim sim = CacheSim::skylake_sp();
  EXPECT_THROW(trace_stp(StpVariant::kSoaUfSplitCk, 4,
                         twin_pde<AcousticPde>(), Isa::kAvx512, sim),
               std::invalid_argument);
}

TEST(RejectedVariant, FootprintSitsBetweenSplitCkAndLog) {
  // It stores the SplitCK tensors plus three full-cell SoA buffers.
  AcousticPde pde;
  auto sp = make_stp_kernel(pde, StpVariant::kSplitCk, 6, Isa::kAvx512);
  auto rej = make_stp_kernel(pde, StpVariant::kSoaUfSplitCk, 6, Isa::kAvx512);
  auto log = make_stp_kernel(pde, StpVariant::kLog, 6, Isa::kAvx512);
  EXPECT_GT(rej.workspace_bytes(), sp.workspace_bytes());
  EXPECT_LT(rej.workspace_bytes(), log.workspace_bytes());
}

}  // namespace
}  // namespace exastp
