// Tests for src/mesh: grid indexing, neighbours, boundaries, point location,
// curvilinear maps.
#include <gtest/gtest.h>

#include "exastp/mesh/geometry.h"
#include "exastp/mesh/grid.h"

namespace exastp {
namespace {

GridSpec small_spec() {
  GridSpec s;
  s.cells = {3, 4, 2};
  s.origin = {-1.0, 0.0, 2.0};
  s.extent = {3.0, 2.0, 1.0};
  return s;
}

TEST(Grid, CoordsIndexRoundTrip) {
  Grid grid(small_spec());
  for (int c = 0; c < grid.num_cells(); ++c) {
    const auto xyz = grid.coords(c);
    EXPECT_EQ(grid.index(xyz[0], xyz[1], xyz[2]), c);
  }
  EXPECT_EQ(grid.num_cells(), 24);
}

TEST(Grid, SpacingAndOrigins) {
  Grid grid(small_spec());
  EXPECT_DOUBLE_EQ(grid.dx(0), 1.0);
  EXPECT_DOUBLE_EQ(grid.dx(1), 0.5);
  EXPECT_DOUBLE_EQ(grid.dx(2), 0.5);
  const auto o = grid.cell_origin(grid.index(2, 1, 1));
  EXPECT_DOUBLE_EQ(o[0], 1.0);
  EXPECT_DOUBLE_EQ(o[1], 0.5);
  EXPECT_DOUBLE_EQ(o[2], 2.5);
  EXPECT_DOUBLE_EQ(grid.cell_volume(), 0.25);
}

TEST(Grid, PeriodicNeighborsWrap) {
  Grid grid(small_spec());
  const int c = grid.index(0, 0, 0);
  auto nb = grid.neighbor(c, 0, 0);
  EXPECT_FALSE(nb.boundary);
  EXPECT_EQ(nb.cell, grid.index(2, 0, 0));
  nb = grid.neighbor(grid.index(2, 3, 1), 1, 1);
  EXPECT_EQ(nb.cell, grid.index(2, 0, 1));
}

TEST(Grid, NonPeriodicBoundariesAreReported) {
  GridSpec s = small_spec();
  s.boundary = {BoundaryKind::kOutflow, BoundaryKind::kWall,
                BoundaryKind::kPeriodic};
  Grid grid(s);
  auto nb = grid.neighbor(grid.index(0, 0, 0), 0, 0);
  EXPECT_TRUE(nb.boundary);
  EXPECT_EQ(nb.kind, BoundaryKind::kOutflow);
  nb = grid.neighbor(grid.index(0, 3, 0), 1, 1);
  EXPECT_TRUE(nb.boundary);
  EXPECT_EQ(nb.kind, BoundaryKind::kWall);
  nb = grid.neighbor(grid.index(0, 0, 0), 2, 0);
  EXPECT_FALSE(nb.boundary) << "z stays periodic";
  nb = grid.neighbor(grid.index(1, 1, 0), 0, 1);
  EXPECT_FALSE(nb.boundary) << "interior face";
}

TEST(Grid, LocateFindsCellAndReferenceCoords) {
  Grid grid(small_spec());
  std::array<double, 3> xi{};
  const int c = grid.locate({-0.25, 1.2, 2.9}, &xi);
  EXPECT_EQ(c, grid.index(0, 2, 1));
  EXPECT_NEAR(xi[0], 0.75, 1e-12);
  EXPECT_NEAR(xi[1], 0.4, 1e-12);
  EXPECT_NEAR(xi[2], 0.8, 1e-12);
}

TEST(Grid, LocateRejectsOutsidePoints) {
  Grid grid(small_spec());
  EXPECT_THROW(grid.locate({5.0, 0.5, 2.5}), std::invalid_argument);
  EXPECT_THROW(grid.locate({0.0, -0.5, 2.5}), std::invalid_argument);
}

TEST(Grid, LocateClampsPointsOnTheDomainBoundary) {
  // Regression: a point exactly on the upper boundary (e.g. a receiver at
  // origin + extent) used to throw; it now clamps into the last cell.
  Grid grid(small_spec());
  std::array<double, 3> xi{};
  const int c = grid.locate({2.0, 2.0, 3.0}, &xi);
  EXPECT_EQ(c, grid.index(2, 3, 1));
  EXPECT_DOUBLE_EQ(xi[0], 1.0);
  EXPECT_DOUBLE_EQ(xi[1], 1.0);
  EXPECT_DOUBLE_EQ(xi[2], 1.0);
  // The lower corner and rounding-level overshoot clamp too ...
  EXPECT_EQ(grid.locate({-1.0, 0.0, 2.0}, &xi), grid.index(0, 0, 0));
  EXPECT_DOUBLE_EQ(xi[0], 0.0);
  EXPECT_EQ(grid.locate({2.0 + 1e-13, 0.5, 2.5}), grid.index(2, 1, 1));
  // ... while genuinely outside points still throw.
  EXPECT_THROW(grid.locate({2.1, 0.5, 2.5}), std::invalid_argument);
}

TEST(Grid, PartitionedViewAddressesHaloSlots) {
  // A 2-cell-wide x-slab of the periodic small_spec box: the x faces are
  // remote (halo slots past num_cells), y/z wrap inside the view.
  Grid view(small_spec(), {1, 0, 0}, {2, 4, 2});
  EXPECT_TRUE(view.partitioned());
  EXPECT_EQ(view.num_cells(), 16);
  EXPECT_EQ(view.num_halo_cells(), 2 * 4 * 2);
  EXPECT_EQ(view.global_cell(view.index(1, 2, 1)),
            Grid(small_spec()).index(2, 2, 1));

  const NeighborRef left = view.neighbor(view.index(0, 1, 0), 0, 0);
  EXPECT_FALSE(left.boundary);
  EXPECT_GE(left.cell, view.num_cells());
  const NeighborRef up = view.neighbor(view.index(0, 3, 0), 1, 1);
  EXPECT_EQ(up.cell, view.index(0, 0, 0)) << "full-span dims wrap locally";
}

TEST(Grid, RejectsDegenerateSpecs) {
  GridSpec s = small_spec();
  s.cells[1] = 0;
  EXPECT_THROW(Grid{s}, std::invalid_argument);
  s = small_spec();
  s.extent[2] = -1.0;
  EXPECT_THROW(Grid{s}, std::invalid_argument);
}

TEST(Geometry, IdentityMapIsIdentity) {
  IdentityMap map;
  auto g = map.metric({0.3, -2.0, 5.0});
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(g[3 * r + c], r == c ? 1.0 : 0.0);
}

TEST(Geometry, SineMapPerturbsOffDiagonalsOnly) {
  SineMap map(0.05, 2.0);
  auto g = map.metric({0.1, 0.2, 0.3});
  for (int r = 0; r < 3; ++r) EXPECT_EQ(g[3 * r + r], 1.0);
  // Perturbation bounded by amplitude * wavenumber.
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      if (r != c) {
        EXPECT_LE(std::abs(g[3 * r + c]), 0.05 * 2.0 + 1e-15);
      }
  EXPECT_NE(g[0 * 3 + 1], 0.0);
}

TEST(Geometry, SineMapWithZeroAmplitudeIsIdentity) {
  SineMap map(0.0, 3.0);
  auto g = map.metric({1.0, 2.0, 3.0});
  IdentityMap id;
  EXPECT_EQ(g, id.metric({1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace exastp
