// Tests for src/kernels/derivative_ops.h: the Loop-over-GEMM lowering of
// the discrete derivative must match a naive per-node contraction in both
// data layouts, for every direction, with and without accumulation.
#include <gtest/gtest.h>

#include <random>

#include "exastp/basis/basis_tables.h"
#include "exastp/common/aligned.h"
#include "exastp/kernels/derivative_ops.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

// Naive reference: out[k][s] (+)= inv_h * sum_l D[k_dir][l] q[..l..][s]
// on an unpadded AoS tensor.
std::vector<double> reference_derivative(const std::vector<double>& q, int n,
                                         int m, const double* diff,
                                         double inv_h, int dir,
                                         const std::vector<double>& base) {
  std::vector<double> out = base;
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s) {
          const int kd = dir == 0 ? k1 : (dir == 1 ? k2 : k3);
          double acc = 0.0;
          for (int l = 0; l < n; ++l) {
            int j1 = k1, j2 = k2, j3 = k3;
            (dir == 0 ? j1 : dir == 1 ? j2 : j3) = l;
            acc += diff[kd * n + l] *
                   q[((static_cast<std::size_t>(j3) * n + j2) * n + j1) * m +
                     s];
          }
          out[((static_cast<std::size_t>(k3) * n + k2) * n + k1) * m + s] +=
              inv_h * acc;
        }
  return out;
}

struct DerivCase {
  int n;
  int m;
  int dir;
  bool accumulate;
  Isa isa;
};

void PrintTo(const DerivCase& c, std::ostream* os) {
  *os << "n" << c.n << "_m" << c.m << "_dir" << c.dir
      << (c.accumulate ? "_acc" : "_set") << "_" << isa_name(c.isa);
}

class DerivativeP : public ::testing::TestWithParam<DerivCase> {};

TEST_P(DerivativeP, AosMatchesNaiveContraction) {
  const auto [n, m, dir, accumulate, isa] = GetParam();
  if (!host_supports(isa)) GTEST_SKIP();
  const auto& basis = basis_tables(n);
  AosLayout aos(n, m, isa);

  std::mt19937 rng(n * 100 + m);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> q_tight(static_cast<std::size_t>(n) * n * n * m);
  std::vector<double> dst_tight(q_tight.size());
  for (auto& v : q_tight) v = dist(rng);
  for (auto& v : dst_tight) v = dist(rng);

  const double inv_h = 2.5;
  std::vector<double> expected = reference_derivative(
      q_tight, n, m, basis.diff.data(), inv_h, dir,
      accumulate ? dst_tight : std::vector<double>(q_tight.size(), 0.0));

  AlignedVector q(aos.size()), dst(aos.size());
  pad_aos(q_tight.data(), n, m, q.data(), aos);
  pad_aos(dst_tight.data(), n, m, dst.data(), aos);
  aos_derivative(isa, aos, basis.diff.data(), inv_h, dir, q.data(),
                 dst.data(), accumulate);
  std::vector<double> got(q_tight.size());
  unpad_aos(dst.data(), aos, m, got.data());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-11) << "index " << i;
}

TEST_P(DerivativeP, AosoaMatchesNaiveContraction) {
  const auto [n, m, dir, accumulate, isa] = GetParam();
  if (!host_supports(isa)) GTEST_SKIP();
  const auto& basis = basis_tables(n);
  AosLayout aos(n, m, isa);
  AosoaLayout aosoa(n, m, isa);
  AlignedVector diff_t = basis.padded_diff_t(aosoa.n_pad);

  std::mt19937 rng(n * 991 + m);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> q_tight(static_cast<std::size_t>(n) * n * n * m);
  std::vector<double> dst_tight(q_tight.size());
  for (auto& v : q_tight) v = dist(rng);
  for (auto& v : dst_tight) v = dist(rng);

  const double inv_h = -1.25;
  std::vector<double> expected = reference_derivative(
      q_tight, n, m, basis.diff.data(), inv_h, dir,
      accumulate ? dst_tight : std::vector<double>(q_tight.size(), 0.0));

  AlignedVector q_aos(aos.size()), dst_aos(aos.size());
  pad_aos(q_tight.data(), n, m, q_aos.data(), aos);
  pad_aos(dst_tight.data(), n, m, dst_aos.data(), aos);
  AlignedVector q(aosoa.size()), dst(aosoa.size());
  aos_to_aosoa(q_aos.data(), aos, q.data(), aosoa);
  aos_to_aosoa(dst_aos.data(), aos, dst.data(), aosoa);

  aosoa_derivative(isa, aosoa, basis.diff.data(), diff_t.data(), inv_h, dir,
                   q.data(), dst.data(), accumulate);

  AlignedVector back(aos.size());
  aosoa_to_aos(dst.data(), aosoa, back.data(), aos);
  std::vector<double> got(q_tight.size());
  unpad_aos(back.data(), aos, m, got.data());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], expected[i], 1e-11) << "index " << i;
}

TEST_P(DerivativeP, PaddingLanesStayZero) {
  // Property: if the padded lanes of the input are zero, they remain
  // exactly zero in the output — the invariant that lets user functions
  // vectorize over full padded lines.
  const auto [n, m, dir, accumulate, isa] = GetParam();
  if (!host_supports(isa)) GTEST_SKIP();
  const auto& basis = basis_tables(n);
  AosoaLayout aosoa(n, m, isa);
  AlignedVector diff_t = basis.padded_diff_t(aosoa.n_pad);
  AlignedVector q(aosoa.size(), 0.0), dst(aosoa.size(), 0.0);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int s = 0; s < m; ++s)
        for (int k1 = 0; k1 < n; ++k1)
          q[aosoa.idx(k3, k2, s, k1)] = dist(rng);
  aosoa_derivative(isa, aosoa, basis.diff.data(), diff_t.data(), 1.0, dir,
                   q.data(), dst.data(), accumulate);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int s = 0; s < m; ++s)
        for (int k1 = n; k1 < aosoa.n_pad; ++k1)
          EXPECT_EQ(dst[aosoa.idx(k3, k2, s, k1)], 0.0)
              << "pad lane " << k1 << " contaminated";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DerivativeP,
    ::testing::Values(DerivCase{3, 2, 0, false, Isa::kScalar},
                      DerivCase{3, 2, 1, true, Isa::kScalar},
                      DerivCase{4, 6, 0, false, Isa::kAvx512},
                      DerivCase{4, 6, 1, false, Isa::kAvx512},
                      DerivCase{4, 6, 2, false, Isa::kAvx512},
                      DerivCase{5, 21, 0, true, Isa::kAvx512},
                      DerivCase{5, 21, 1, true, Isa::kAvx512},
                      DerivCase{5, 21, 2, true, Isa::kAvx512},
                      DerivCase{6, 9, 2, false, Isa::kAvx2},
                      DerivCase{8, 21, 0, true, Isa::kAvx512},
                      DerivCase{9, 21, 1, false, Isa::kAvx512},
                      DerivCase{11, 5, 2, true, Isa::kAvx2}));

TEST(DerivativeOps, RejectsBadDirection) {
  const auto& basis = basis_tables(3);
  AosLayout aos(3, 2, Isa::kScalar);
  AlignedVector q(aos.size(), 0.0), dst(aos.size(), 0.0);
  EXPECT_THROW(aos_derivative(Isa::kScalar, aos, basis.diff.data(), 1.0, 3,
                              q.data(), dst.data(), false),
               std::invalid_argument);
}

TEST(DerivativeOps, DifferentiatesPolynomialExactly) {
  // d/dx of x^2 * y on the nodal grid must be exact (2xy), through the
  // full GEMM path.
  const int n = 4, m = 1;
  const auto& basis = basis_tables(n);
  AosLayout aos(n, m, Isa::kAvx512);
  AlignedVector q(aos.size(), 0.0), dst(aos.size(), 0.0);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        q[aos.idx(k3, k2, k1, 0)] =
            basis.nodes[k1] * basis.nodes[k1] * basis.nodes[k2];
  aos_derivative(Isa::kAvx512, aos, basis.diff.data(), 1.0, 0, q.data(),
                 dst.data(), false);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        EXPECT_NEAR(dst[aos.idx(k3, k2, k1, 0)],
                    2.0 * basis.nodes[k1] * basis.nodes[k2], 1e-12);
}

}  // namespace
}  // namespace exastp
