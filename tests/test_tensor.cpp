// Tests for src/tensor: layout index maps, padding rules, transpose
// round-trips, pad/unpad.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "exastp/common/aligned.h"
#include "exastp/tensor/layout.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

struct LayoutCase {
  int n;
  int m;
  Isa isa;
};

void PrintTo(const LayoutCase& c, std::ostream* os) {
  *os << "n" << c.n << "_m" << c.m << "_" << isa_name(c.isa);
}

class LayoutP : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(LayoutP, AosIndexIsBijective) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  std::set<std::size_t> seen;
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s) {
          const std::size_t i = aos.idx(k3, k2, k1, s);
          EXPECT_LT(i, aos.size());
          EXPECT_TRUE(seen.insert(i).second) << "duplicate index";
        }
}

TEST_P(LayoutP, AosQuantityIsUnitStride) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  if (m >= 2) {
    EXPECT_EQ(aos.idx(0, 0, 0, 1) - aos.idx(0, 0, 0, 0), 1u);
  }
  EXPECT_EQ(aos.idx(0, 0, 1, 0) - aos.idx(0, 0, 0, 0),
            static_cast<std::size_t>(aos.m_pad));
}

TEST_P(LayoutP, AosoaXLineIsUnitStride) {
  const auto [n, m, isa] = GetParam();
  AosoaLayout aosoa(n, m, isa);
  if (n >= 2) {
    EXPECT_EQ(aosoa.idx(0, 0, 0, 1) - aosoa.idx(0, 0, 0, 0), 1u);
  }
  EXPECT_EQ(aosoa.idx(0, 0, 1, 0) - aosoa.idx(0, 0, 0, 0),
            static_cast<std::size_t>(aosoa.n_pad));
}

TEST_P(LayoutP, PaddingIsSimdMultiple) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  AosoaLayout aosoa(n, m, isa);
  EXPECT_EQ(aos.m_pad % vector_width(isa), 0);
  EXPECT_GE(aos.m_pad, m);
  EXPECT_LT(aos.m_pad - m, vector_width(isa));
  EXPECT_EQ(aosoa.n_pad % vector_width(isa), 0);
}

TEST_P(LayoutP, AosAosoaRoundTrip) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  AosoaLayout aosoa(n, m, isa);
  AlignedVector src(aos.size());
  std::iota(src.begin(), src.end(), 1.0);
  AlignedVector mid(aosoa.size()), back(aos.size());
  aos_to_aosoa(src.data(), aos, mid.data(), aosoa);
  aosoa_to_aos(mid.data(), aosoa, back.data(), aos);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          EXPECT_EQ(back[aos.idx(k3, k2, k1, s)],
                    src[aos.idx(k3, k2, k1, s)]);
}

TEST_P(LayoutP, AosoaTransposePlacesValuesAndZeroesPadding) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  AosoaLayout aosoa(n, m, isa);
  AlignedVector src(aos.size(), -7.0);  // pad lanes carry garbage
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          src[aos.idx(k3, k2, k1, s)] = 1000.0 * k3 + 100.0 * k2 +
                                        10.0 * k1 + s;
  AlignedVector dst(aosoa.size(), 13.0);
  aos_to_aosoa(src.data(), aos, dst.data(), aosoa);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int s = 0; s < m; ++s) {
        for (int k1 = 0; k1 < n; ++k1)
          EXPECT_EQ(dst[aosoa.idx(k3, k2, s, k1)],
                    1000.0 * k3 + 100.0 * k2 + 10.0 * k1 + s);
        for (int k1 = n; k1 < aosoa.n_pad; ++k1)
          EXPECT_EQ(dst[aosoa.idx(k3, k2, s, k1)], 0.0) << "pad not zeroed";
      }
}

TEST_P(LayoutP, AosSoaRoundTrip) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  SoaLayout soa(n, m, isa);
  AlignedVector src(aos.size());
  std::iota(src.begin(), src.end(), 0.5);
  AlignedVector mid(soa.size()), back(aos.size());
  aos_to_soa(src.data(), aos, mid.data(), soa);
  soa_to_aos(mid.data(), soa, back.data(), aos);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < m; ++s)
          EXPECT_EQ(back[aos.idx(k3, k2, k1, s)],
                    src[aos.idx(k3, k2, k1, s)]);
}

TEST_P(LayoutP, PadUnpadRoundTrip) {
  const auto [n, m, isa] = GetParam();
  AosLayout aos(n, m, isa);
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  std::vector<double> tight(nodes * m);
  std::iota(tight.begin(), tight.end(), 2.0);
  AlignedVector padded(aos.size(), -1.0);
  pad_aos(tight.data(), n, m, padded.data(), aos);
  // Pad lanes must be exactly zero (they take part in SIMD arithmetic).
  for (std::size_t k = 0; k < nodes; ++k)
    for (int s = m; s < aos.m_pad; ++s)
      EXPECT_EQ(padded[k * aos.m_pad + s], 0.0);
  std::vector<double> back(nodes * m, -1.0);
  unpad_aos(padded.data(), aos, m, back.data());
  EXPECT_EQ(back, tight);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutP,
    ::testing::Values(LayoutCase{2, 1, Isa::kScalar},
                      LayoutCase{3, 5, Isa::kAvx2},
                      LayoutCase{4, 9, Isa::kAvx512},
                      LayoutCase{5, 21, Isa::kAvx512},
                      LayoutCase{8, 21, Isa::kAvx512},
                      LayoutCase{9, 21, Isa::kAvx512},
                      LayoutCase{6, 3, Isa::kAvx2},
                      LayoutCase{11, 21, Isa::kAvx512}));

TEST(Padding, SweetspotOrder8NoOverheadOrder9Worst) {
  // Sec. V-A: with AVX-512 (8 doubles) order 8 needs no x-line padding while
  // order 9 pads to 16 — the largest relative overhead in the sweep.
  AosoaLayout n8(8, 21, Isa::kAvx512);
  AosoaLayout n9(9, 21, Isa::kAvx512);
  EXPECT_EQ(n8.n_pad, 8);
  EXPECT_DOUBLE_EQ(n8.padding_overhead(), 0.0);
  EXPECT_EQ(n9.n_pad, 16);
  EXPECT_DOUBLE_EQ(n9.padding_overhead(), 7.0 / 16.0);
  // Order 9 is the worst case in the high-order regime the paper sweeps.
  for (int n : {6, 7, 8, 10, 11})
    EXPECT_GT(n9.padding_overhead(),
              AosoaLayout(n, 21, Isa::kAvx512).padding_overhead())
        << "n=" << n;
}

}  // namespace
}  // namespace exastp
