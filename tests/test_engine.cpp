// Tests for the src/engine layer: PDE/scenario registries, config parsing
// and the Simulation façade. The matrix test guards the type-erased path
// (string -> KernelFactory -> StpKernel) against the templated one: every
// registered PDE must run under every kernel variant and agree with the
// generic reference kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/kernels/registry.h"
#include "exastp/pde/elastic.h"
#include "exastp/solver/rk_dg_solver.h"

namespace exastp {
namespace {

TEST(PdeRegistry, ListsTheBuiltinPdes) {
  for (const char* name :
       {"acoustic", "advection", "elastic", "maxwell", "curvilinear_elastic"})
    EXPECT_TRUE(PdeRegistry::instance().contains(name)) << name;
}

TEST(PdeRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    find_pde("no_such_pde");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("acoustic"), std::string::npos);
  }
}

TEST(PdeRegistry, RejectsDuplicateRegistration) {
  auto acoustic = find_pde("acoustic");
  EXPECT_THROW(PdeRegistry::instance().add(acoustic), std::invalid_argument);
}

TEST(PdeRegistry, FactoryInfoMatchesRuntime) {
  for (const std::string& name : PdeRegistry::instance().names()) {
    auto factory = find_pde(name);
    EXPECT_EQ(factory->name(), name);
    EXPECT_EQ(factory->info().quants, factory->runtime()->info().quants);
    EXPECT_EQ(factory->info().name, name);
  }
}

TEST(ScenarioRegistry, ListsTheBuiltinScenarios) {
  for (const char* name : {"planewave", "loh1", "maxwell_cavity", "gaussian"})
    EXPECT_TRUE(ScenarioRegistry::instance().contains(name)) << name;
}

TEST(ScenarioRegistry, UnknownNameThrows) {
  EXPECT_THROW(find_scenario("no_such_scenario"), std::invalid_argument);
}

TEST(ConfigParse, KeyValuePairsOverrideScenarioDefaults) {
  const SimulationConfig config = parse_simulation_args(
      {"scenario=planewave", "order=6", "cells=4x2x1", "t_end=0.5",
       "variant=log", "stepper=rk4", "bc=outflow,periodic,wall",
       "extent=2,1,1", "cfl=0.3"});
  EXPECT_EQ(config.scenario, "planewave");
  EXPECT_EQ(config.order, 6);
  EXPECT_EQ(config.grid.cells, (std::array<int, 3>{4, 2, 1}));
  EXPECT_DOUBLE_EQ(config.t_end, 0.5);
  EXPECT_EQ(config.variant, StpVariant::kLog);
  EXPECT_EQ(config.stepper, "rk4");
  EXPECT_EQ(config.grid.boundary[0], BoundaryKind::kOutflow);
  EXPECT_EQ(config.grid.boundary[2], BoundaryKind::kWall);
  EXPECT_DOUBLE_EQ(config.grid.extent[0], 2.0);
  EXPECT_DOUBLE_EQ(config.cfl, 0.3);
}

TEST(ConfigParse, ScenarioDefaultsApplyWithoutOverrides) {
  const SimulationConfig config = parse_simulation_args({"scenario=loh1"});
  EXPECT_EQ(config.grid.cells, (std::array<int, 3>{4, 4, 4}));
  EXPECT_DOUBLE_EQ(config.grid.extent[2], 8.0);
  EXPECT_EQ(config.grid.boundary[2], BoundaryKind::kWall);
  EXPECT_DOUBLE_EQ(config.t_end, 2.0);
}

TEST(ConfigParse, ShorthandsExpandToCubes) {
  const SimulationConfig config =
      parse_simulation_args({"cells=5", "extent=2.0", "bc=wall"});
  EXPECT_EQ(config.grid.cells, (std::array<int, 3>{5, 5, 5}));
  EXPECT_DOUBLE_EQ(config.grid.extent[1], 2.0);
  EXPECT_EQ(config.grid.boundary[1], BoundaryKind::kWall);
}

TEST(ConfigParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_simulation_args({"no_equals_sign"}),
               std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"unknown_key=1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"order=abc"}), std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"cells=1x2"}), std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"bc=open"}), std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"scenario=nope"}),
               std::invalid_argument);
}

TEST(ConfigParse, DuplicateKeyIsAHardErrorNamingTheKey) {
  try {
    parse_simulation_args({"scenario=planewave", "order=3", "order=4"});
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate config key \"order\""),
              std::string::npos)
        << e.what();
  }
  // Also for dotted keys — no silent last-one-wins anywhere.
  EXPECT_THROW(parse_simulation_args({"scenario=loh1", "scenario.half_cs=4",
                                      "scenario.half_cs=5"}),
               std::invalid_argument);
}

TEST(ConfigParse, StreamingOutputAndReceiverKeys) {
  const SimulationConfig config = parse_simulation_args(
      {"receivers=0.5,0.5,0.5;0.1,0.2,0.3", "output.receivers_csv=a.csv",
       "output.receivers_bin=a.bin", "output.series=snap",
       "output.interval=0.25", "output.quantities=0,3", "output.csv=n.csv",
       "output.vtk=n.vtk"});
  ASSERT_EQ(config.receivers.size(), 2u);
  EXPECT_EQ(config.receivers[1], (std::array<double, 3>{0.1, 0.2, 0.3}));
  EXPECT_EQ(config.output.receivers_csv, "a.csv");
  EXPECT_EQ(config.output.receivers_bin, "a.bin");
  EXPECT_EQ(config.output.series, "snap");
  EXPECT_DOUBLE_EQ(config.output.interval, 0.25);
  EXPECT_EQ(config.output.quantities, (std::vector<int>{0, 3}));
  EXPECT_EQ(config.output.csv, "n.csv");  // output.csv aliases csv
  EXPECT_EQ(config.output.vtk, "n.vtk");
  EXPECT_THROW(parse_simulation_args({"receivers="}), std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"receivers=0.5,0.5"}),
               std::invalid_argument);
  // Quantity lists split on ',' only — the 'x' shorthand is for triples.
  EXPECT_THROW(parse_simulation_args({"output.quantities=0x3"}),
               std::invalid_argument);
}

TEST(ConfigParse, ScenarioParamsPassThroughWithPrefixStripped) {
  const SimulationConfig config = parse_simulation_args(
      {"scenario=loh1", "scenario.layer_rho=3.5", "scenario.half_cs=4.0"});
  ASSERT_EQ(config.scenario_params.size(), 2u);
  EXPECT_EQ(config.scenario_params.at("layer_rho"), "3.5");
  EXPECT_DOUBLE_EQ(scenario_param(config, "layer_rho", 0.0), 3.5);
  EXPECT_DOUBLE_EQ(scenario_param(config, "absent", 7.0), 7.0);
  EXPECT_THROW(parse_simulation_args({"scenario.=1"}),
               std::invalid_argument);
}

TEST(Facade, UnknownScenarioParamThrowsWithKnownKeys) {
  SimulationConfig config = parse_simulation_args(
      {"scenario=loh1", "scenario.layer_rho=3.5"});
  config.scenario_params["bogus"] = "1";
  try {
    Simulation::from_config(std::move(config));
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("layer_rho"), std::string::npos);
  }
}

TEST(Facade, PlanewaveWavenumberParamsKeepTheExactSolution) {
  // A diagonal (kx, ky) = (1, 1) wave is still exact on the periodic unit
  // box: the parameterized initial condition and exact solution must stay
  // consistent with each other.
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=5", "cells=3x3x3", "t_end=0.1",
       "scenario.kx=1", "scenario.ky=1"});
  sim.run();
  EXPECT_LT(sim.l2_error(), 5e-3);
  EXPECT_THROW(Simulation::from_args({"scenario=planewave", "scenario.kx=0",
                                      "scenario.ky=0", "scenario.kz=0"}),
               std::invalid_argument);
}

TEST(Facade, Loh1MaterialParamsChangeTheMedium) {
  // Doubling the halfspace density must show up in the initialized
  // parameter field below the interface (rho is quantity kRho).
  Simulation stock = Simulation::from_args({"scenario=loh1", "order=3"});
  Simulation dense = Simulation::from_args(
      {"scenario=loh1", "order=3", "scenario.half_rho=5.4"});
  const std::array<double, 3> below{4.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(stock.solver().sample(below, ElasticPde::kRho), 2.7);
  EXPECT_DOUBLE_EQ(dense.solver().sample(below, ElasticPde::kRho), 5.4);
}

TEST(Facade, GaussianSigmaParamShapesThePulse) {
  Simulation wide = Simulation::from_args(
      {"scenario=gaussian", "cells=2x2x2", "scenario.sigma=0.4"});
  Simulation narrow = Simulation::from_args(
      {"scenario=gaussian", "cells=2x2x2", "scenario.sigma=0.05"});
  const std::array<double, 3> off_center{0.75, 0.5, 0.5};
  EXPECT_GT(wide.solver().sample(off_center, 0),
            narrow.solver().sample(off_center, 0) + 0.5);
}

TEST(VariantNames, ParseAndNameAreInverse) {
  int count = 0;
  for (StpVariant v : kAllVariants) {
    EXPECT_EQ(parse_variant(variant_name(v)), v) << variant_name(v);
    ++count;
  }
  EXPECT_EQ(count, 5) << "kAllVariants must cover every dispatched variant";
  EXPECT_THROW(parse_variant("nope"), std::invalid_argument);
}

/// Unpadded nodal snapshot of every quantity in every cell.
std::vector<double> snapshot(const SolverBase& solver) {
  const AosLayout& layout = solver.layout();
  std::vector<double> values;
  for (int c = 0; c < solver.grid().num_cells(); ++c) {
    const double* qc = solver.cell_dofs(c);
    for (int k3 = 0; k3 < layout.n; ++k3)
      for (int k2 = 0; k2 < layout.n; ++k2)
        for (int k1 = 0; k1 < layout.n; ++k1)
          for (int s = 0; s < layout.m; ++s)
            values.push_back(qc[layout.idx(k3, k2, k1, s)]);
  }
  return values;
}

// The issue's registry guard: every registered PDE name x every kernel
// variant builds through the string-keyed path, takes a step, stays finite,
// and the optimized variants agree with the generic reference kernel.
TEST(EngineMatrix, EveryPdeRunsEveryVariantAndMatchesGeneric) {
  for (const std::string& pde_name : PdeRegistry::instance().names()) {
    std::vector<double> reference;
    for (StpVariant v : kAllVariants) {
      SimulationConfig config;
      config.scenario = "gaussian";
      config.pde = pde_name;
      config.variant = v;
      config.order = 3;
      config.grid.cells = {2, 2, 2};
      Simulation sim = Simulation::from_config(std::move(config));
      sim.solver().step(1e-3);
      sim.solver().step(1e-3);

      const std::vector<double> state = snapshot(sim.solver());
      for (double value : state) ASSERT_TRUE(std::isfinite(value))
          << pde_name << " " << variant_name(v);
      if (v == StpVariant::kGeneric) {
        reference = state;
        continue;
      }
      ASSERT_EQ(state.size(), reference.size());
      for (std::size_t i = 0; i < state.size(); ++i)
        ASSERT_NEAR(state[i], reference[i], 1e-9)
            << pde_name << " " << variant_name(v) << " node " << i;
    }
  }
}

TEST(Facade, PlanewaveMeetsTheAccuracyBudget) {
  Simulation sim = Simulation::from_args(
      {"pde=acoustic", "scenario=planewave", "variant=aosoa_splitck",
       "order=5", "cells=3x3x3", "t_end=0.25"});
  sim.run();
  EXPECT_LT(sim.l2_error(), 1e-3);
  EXPECT_NEAR(sim.solver().sample({0.5, 0.5, 0.5}, 0), 1.0, 1e-2);
}

TEST(Facade, RkStepperRunsTheSameScenario) {
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "stepper=rk4", "order=3", "t_end=0.1"});
  EXPECT_EQ(sim.solver().stepper_name(), "rk4");
  const int steps = sim.run();
  EXPECT_GT(steps, 0);
  EXPECT_LT(sim.l2_error(), 0.05);
}

TEST(Facade, RkStepperAcceptsPointSourceScenarios) {
  // LOH1 needs a point source; the RK baseline injects it per stage now.
  Simulation sim = Simulation::from_args(
      {"scenario=loh1", "stepper=rk4", "cells=4x4x4", "order=3",
       "t_end=0.4"});
  EXPECT_TRUE(sim.solver().supports_point_sources());
  sim.run();
  // The Ricker source must have injected a signal into its cell.
  const double vz = sim.solver().sample({4.5, 4.5, 2.5}, ElasticPde::kVz);
  EXPECT_TRUE(std::isfinite(vz));
  EXPECT_NE(vz, 0.0);
}

TEST(Facade, MaxwellCavityTracksTheExactStandingMode) {
  Simulation sim = Simulation::from_args(
      {"scenario=maxwell_cavity", "order=3", "t_end=0.4"});
  sim.run();
  EXPECT_TRUE(sim.has_exact_solution());
  EXPECT_LT(sim.l2_error(), 2e-2);
}

TEST(Facade, GaussianAdvectionHasAnExactTranslate) {
  Simulation sim = Simulation::from_args(
      {"scenario=gaussian", "order=4", "cells=4x4x4", "t_end=0.2"});
  EXPECT_EQ(sim.pde().name(), "advection");
  sim.run();
  EXPECT_LT(sim.l2_error(), 5e-3);
}

TEST(Facade, BothSteppersSampleIdenticallyThroughTheBase) {
  // Same scenario, same nodal initial condition -> the shared
  // SolverBase::sample must return bit-identical values at t = 0.
  Simulation ader = Simulation::from_args(
      {"scenario=gaussian", "pde=acoustic", "order=4", "cells=2x2x2"});
  Simulation rk = Simulation::from_args(
      {"scenario=gaussian", "pde=acoustic", "order=4", "cells=2x2x2",
       "stepper=rk4"});
  for (const std::array<double, 3>& x :
       {std::array<double, 3>{0.5, 0.5, 0.5}, {0.3, 0.3, 0.3},
        {0.8, 0.1, 0.6}}) {
    const double a = ader.solver().sample(x, 0);
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_DOUBLE_EQ(a, rk.solver().sample(x, 0));
  }
}

TEST(Facade, UnsupportedIsaThrows) {
  SimulationConfig config;
  config.isa = "bogus";
  EXPECT_THROW(Simulation::from_config(std::move(config)),
               std::invalid_argument);
}

}  // namespace
}  // namespace exastp
