// Thread-parallel stepping: determinism and correctness matrix.
//
// The contract under test (see README "Threading"): for every PDE and both
// steppers, running the same configuration with threads=N must produce
// bitwise-identical DOFs to threads=1 — the parallel traversals are
// per-cell, interior Riemann solves are recomputed per side from identical
// inputs, and every global reduction is ordered. The ParallelFor utility
// itself is unit-tested at the bottom.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "exastp/common/parallel.h"
#include "exastp/engine/simulation.h"
#include "exastp/solver/norms.h"

namespace exastp {
namespace {

/// Largest absolute DOF difference between the two solvers; 0.0 means
/// bitwise-identical (all test states are finite).
double max_dof_difference(const SolverBase& a, const SolverBase& b) {
  EXPECT_EQ(a.grid().num_cells(), b.grid().num_cells());
  EXPECT_EQ(a.layout().size(), b.layout().size());
  double worst = 0.0;
  for (int c = 0; c < a.grid().num_cells(); ++c) {
    const double* qa = a.cell_dofs(c);
    const double* qb = b.cell_dofs(c);
    for (std::size_t i = 0; i < a.layout().size(); ++i)
      worst = std::max(worst, std::abs(qa[i] - qb[i]));
  }
  return worst;
}

Simulation run_with_threads(const std::vector<std::string>& args,
                            int threads) {
  std::vector<std::string> full = args;
  full.push_back("threads=" + std::to_string(threads));
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

/// Serial vs threads=4: bitwise-identical DOFs and identical functionals.
void expect_thread_invariant(const std::vector<std::string>& args) {
  Simulation serial = run_with_threads(args, 1);
  Simulation threaded = run_with_threads(args, 4);
  EXPECT_EQ(serial.solver().num_threads(), 1);
  EXPECT_EQ(threaded.solver().num_threads(), 4);
  EXPECT_EQ(serial.solver().time(), threaded.solver().time());
  EXPECT_EQ(max_dof_difference(serial.solver(), threaded.solver()), 0.0)
      << "threads=4 diverged from serial";
  if (serial.has_exact_solution()) {
    EXPECT_EQ(serial.l2_error(), threaded.l2_error());
  }
}

// One case per registered PDE for each stepper, periodic boxes via the
// PDE-agnostic gaussian scenario.
TEST(ThreadDeterminism, AderAcoustic) {
  expect_thread_invariant({"scenario=gaussian", "pde=acoustic",
                           "stepper=ader", "order=3", "cells=3x3x3",
                           "t_end=0.08"});
}

TEST(ThreadDeterminism, AderAdvection) {
  expect_thread_invariant({"scenario=gaussian", "pde=advection",
                           "stepper=ader", "order=3", "cells=3x3x3",
                           "t_end=0.08"});
}

TEST(ThreadDeterminism, AderElastic) {
  expect_thread_invariant({"scenario=gaussian", "pde=elastic",
                           "stepper=ader", "order=3", "cells=3x3x3",
                           "t_end=0.05"});
}

TEST(ThreadDeterminism, AderMaxwell) {
  expect_thread_invariant({"scenario=gaussian", "pde=maxwell",
                           "stepper=ader", "order=3", "cells=3x3x3",
                           "t_end=0.08"});
}

TEST(ThreadDeterminism, RkAcoustic) {
  expect_thread_invariant({"scenario=gaussian", "pde=acoustic",
                           "stepper=rk4", "order=3", "cells=3x3x3",
                           "t_end=0.08"});
}

TEST(ThreadDeterminism, RkMaxwell) {
  expect_thread_invariant({"scenario=gaussian", "pde=maxwell",
                           "stepper=rk4", "order=3", "cells=3x3x3",
                           "t_end=0.08"});
}

// Non-periodic boundaries exercise the ghost-state path; the generic
// kernel exercises the fork of the virtual-PDE variant.
TEST(ThreadDeterminism, AderPlanewaveOutflowWalls) {
  expect_thread_invariant({"scenario=planewave", "order=4", "cells=3x3x3",
                           "bc=outflow,wall,periodic", "t_end=0.1"});
}

TEST(ThreadDeterminism, AderGenericVariant) {
  expect_thread_invariant({"scenario=planewave", "variant=generic",
                           "order=3", "cells=3x3x3", "t_end=0.1"});
}

// Point sources on both steppers (LOH1: heterogeneous material, Ricker
// source, absorbing + wall boundaries).
TEST(ThreadDeterminism, AderLoh1PointSource) {
  expect_thread_invariant(
      {"scenario=loh1", "stepper=ader", "order=3", "t_end=0.3"});
}

TEST(ThreadDeterminism, RkLoh1PointSource) {
  expect_thread_invariant(
      {"scenario=loh1", "stepper=rk4", "order=3", "t_end=0.3"});
}

// Thread counts that do not divide the cell count, and oversubscription
// beyond the 27 cells, must not change the bits either.
TEST(ThreadDeterminism, RaggedAndOversubscribedPartitions) {
  const std::vector<std::string> args = {"scenario=planewave", "order=3",
                                         "cells=3x3x3", "t_end=0.1"};
  Simulation serial = run_with_threads(args, 1);
  for (int threads : {3, 5, 32}) {
    Simulation threaded = run_with_threads(args, threads);
    EXPECT_EQ(max_dof_difference(serial.solver(), threaded.solver()), 0.0)
        << "threads=" << threads;
  }
}

TEST(ThreadDeterminism, EnergyAndNormsAreOrderedReductions) {
  const std::vector<std::string> args = {"scenario=maxwell_cavity",
                                         "order=3", "t_end=0.2"};
  Simulation serial = run_with_threads(args, 1);
  Simulation threaded = run_with_threads(args, 4);
  EXPECT_EQ(serial.l2_error(), threaded.l2_error());
  EXPECT_EQ(integral(serial.solver(), 0), integral(threaded.solver(), 0));
}

// Blow-up detection must fire identically when threaded.
TEST(ThreadDeterminism, ThreadedBlowUpDetectionThrows) {
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=3x3x3", "threads=4"});
  EXPECT_THROW(
      {
        for (int i = 0; i < 200; ++i)
          sim.solver().step(50.0 * sim.solver().stable_dt());
      },
      std::runtime_error);
}

TEST(ParallelFor, ResolvesAutoThreadCounts) {
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_EQ(resolve_threads(0), hardware_threads());
  EXPECT_EQ(resolve_threads(-3), hardware_threads());
  EXPECT_EQ(resolve_threads(7), 7);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ParallelFor par(threads);
    for (long n : {0L, 1L, 7L, 64L, 1000L}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      par.for_each(n, [&](int, long i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (long i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    }
  }
}

TEST(ParallelFor, RespectsChunkGranularity) {
  ParallelFor par(4);
  std::vector<long> starts;
  std::mutex m;
  par.run(100, 8, [&](int, long begin, long end) {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_LE(end, 100);
    starts.push_back(begin);
  });
  for (long b : starts) EXPECT_EQ(b % 8, 0) << b;
}

TEST(ParallelFor, PropagatesTheFirstChunkException) {
  ParallelFor par(4);
  try {
    par.for_each(100, [](int, long i) {
      if (i >= 50) throw std::runtime_error("chunk " + std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    // Chunk order, not completion order: the lowest throwing chunk wins.
    EXPECT_EQ(std::string(e.what()), "chunk 50");
  }
}

TEST(ParallelFor, OrderedPartialsAreThreadCountInvariant) {
  auto f = [](long i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  const std::vector<double> serial = ordered_partials(ParallelFor(1), 97, f);
  const std::vector<double> threaded =
      ordered_partials(ParallelFor(5), 97, f);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], threaded[i]);
}

}  // namespace
}  // namespace exastp
