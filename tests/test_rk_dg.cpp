// Tests for the RK4-DG baseline solver: it must solve the same problems as
// the ADER-DG engine (it shares the spatial discretization), converge at
// min(spatial, RK4) order, and agree with ADER-DG trajectories to
// discretization accuracy.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/advection.h"
#include "exastp/scenarios/planewave.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/norms.h"
#include "exastp/solver/rk_dg_solver.h"

namespace exastp {
namespace {

constexpr double kPi = std::numbers::pi;

RkDgSolver make_rk(int order, int cells_x) {
  AdvectionPde pde;
  pde.velocity = {1.0, 0.0, 0.0};
  GridSpec grid;
  grid.cells = {cells_x, 1, 1};
  auto runtime = std::make_shared<PdeAdapter<AdvectionPde>>(pde);
  return RkDgSolver(runtime, order, host_best_isa(), grid);
}

void sine_ic(const std::array<double, 3>& x, double* q) {
  for (int s = 0; s < AdvectionPde::kQuants; ++s)
    q[s] = std::sin(2.0 * kPi * x[0]);
}

TEST(RkDg, TransportsSineWave) {
  auto solver = make_rk(4, 8);
  solver.set_initial_condition(sine_ic);
  solver.run_until(0.1);
  const double err = l2_error(
      solver, 0, [](const std::array<double, 3>& x, double t) {
        return std::sin(2.0 * kPi * (x[0] - t));
      });
  EXPECT_LT(err, 1e-4);
}

TEST(RkDg, FourOperatorEvaluationsPerStep) {
  auto solver = make_rk(3, 2);
  solver.set_initial_condition(sine_ic);
  solver.step(1e-3);
  EXPECT_EQ(solver.operator_evaluations(), 4);
  solver.step(1e-3);
  EXPECT_EQ(solver.operator_evaluations(), 8);
}

TEST(RkDg, ConvergesAtDesignOrder) {
  // Order 3 spatial + RK4 time: expect ~3rd order overall.
  double errs[2];
  const int meshes[2] = {4, 8};
  for (int i = 0; i < 2; ++i) {
    auto solver = make_rk(3, meshes[i]);
    solver.set_initial_condition(sine_ic);
    solver.run_until(0.1);
    errs[i] = l2_error(solver, 0,
                       [](const std::array<double, 3>& x, double t) {
                         return std::sin(2.0 * kPi * (x[0] - t));
                       });
  }
  EXPECT_GT(std::log2(errs[0] / errs[1]), 2.3)
      << errs[0] << " -> " << errs[1];
}

TEST(RkDg, MatchesAderTrajectory) {
  // Same acoustic plane wave, both solvers, same end time: the solutions
  // must agree to the discretization error, not just qualitatively.
  AcousticPde pde;
  PlaneWave wave;
  GridSpec grid;
  grid.cells = {3, 1, 1};
  auto runtime = std::make_shared<PdeAdapter<AcousticPde>>(pde);

  RkDgSolver rk(runtime, 4, host_best_isa(), grid);
  rk.set_initial_condition([&](const std::array<double, 3>& x, double* q) {
    wave.initial_condition(x, q);
  });
  rk.run_until(0.1);

  AderDgSolver ader(
      runtime, make_stp_kernel(pde, StpVariant::kSplitCk, 4, host_best_isa()),
      grid);
  ader.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        wave.initial_condition(x, q);
      });
  ader.run_until(0.1);

  auto exact = [&](const std::array<double, 3>& x, double t) {
    return wave.pressure(x, t);
  };
  const double err_rk = l2_error(rk, AcousticPde::kP, exact);
  const double err_ader = l2_error(ader, AcousticPde::kP, exact);
  EXPECT_LT(err_rk, 5e-3);
  EXPECT_LT(err_ader, 5e-3);
  // Cross-difference bounded by the sum of the two errors.
  double cross = 0.0;
  for (int c = 0; c < rk.grid().num_cells(); ++c) {
    const double* a = rk.cell_dofs(c);
    const double* b = ader.cell_dofs(c);
    for (std::size_t i = 0; i < rk.layout().size(); ++i)
      cross = std::max(cross, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(cross, 2.0 * (err_rk + err_ader) + 1e-6);
}

TEST(RkDg, PointSourceMatchesAder) {
  // Same Ricker source, same spatial discretization: the RK4 per-stage
  // injection and the ADER direct time integral must agree to time-
  // integration accuracy (both fourth order).
  AcousticPde pde;
  GridSpec grid;
  grid.cells = {3, 3, 3};
  auto runtime = std::make_shared<PdeAdapter<AcousticPde>>(pde);
  auto quiet = [](const std::array<double, 3>&, double* q) {
    for (int s = 0; s < AcousticPde::kVars; ++s) q[s] = 0.0;
    q[AcousticPde::kRho] = 1.0;
    q[AcousticPde::kC] = 1.0;
  };
  MeshPointSource src;
  src.position = {0.5, 0.5, 0.5};
  src.quantity = AcousticPde::kP;
  src.wavelet = std::make_shared<RickerWavelet>(2.0, 0.4);

  RkDgSolver rk(runtime, 4, host_best_isa(), grid);
  EXPECT_TRUE(rk.supports_point_sources());
  rk.set_initial_condition(quiet);
  rk.add_point_source(src);
  rk.run_until(0.6, /*cfl=*/0.2);

  AderDgSolver ader(
      runtime, make_stp_kernel(pde, StpVariant::kSplitCk, 4, host_best_isa()),
      grid);
  ader.set_initial_condition(quiet);
  ader.add_point_source(src);
  ader.run_until(0.6, /*cfl=*/0.2);

  const double p_rk = rk.sample({0.55, 0.5, 0.5}, AcousticPde::kP);
  const double p_ader = ader.sample({0.55, 0.5, 0.5}, AcousticPde::kP);
  EXPECT_NE(p_rk, 0.0);
  EXPECT_NEAR(p_rk, p_ader, 2e-2 * std::abs(p_ader) + 1e-8);
}

TEST(RkDg, ConservesMassOnPeriodicMesh) {
  auto solver = make_rk(4, 4);
  solver.set_initial_condition(sine_ic);
  const double before = integral(solver, 2);
  solver.run_until(0.05);
  EXPECT_NEAR(integral(solver, 2), before, 1e-11);
}

TEST(RkDg, DetectsBlowUpAndBadDt) {
  auto solver = make_rk(3, 2);
  solver.set_initial_condition(sine_ic);
  EXPECT_THROW(solver.step(-1.0), std::invalid_argument);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) solver.step(100.0 * solver.stable_dt());
      },
      std::runtime_error);
}

}  // namespace
}  // namespace exastp
