// Over-decomposed execution: the Partition rank map, the shards_per_rank=
// and schedule= config keys, and the dependency-driven scheduler's bitwise
// equivalence to lockstep across the over-decomposition matrix.
//
// The contract under test (solver/sharded_solver.h): schedule=deps
// reorders WHEN sweeps run and when halo bytes move — per-shard phase
// pipelining, eager captures, latency-delayed deliveries — but never WHAT
// they compute, so for every {threads} x {shards_per_rank} x {lts} x
// {schedule} combination the field state is bitwise-identical to the
// monolithic run. These tests carry the `threaded` and `sharded` ctest
// labels the TSan CI job runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exastp/common/simd.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/engine/simulation.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/halo_exchange.h"
#include "exastp/solver/sharded_solver.h"
#include "exastp/telemetry/telemetry.h"

namespace exastp {
namespace {

/// Largest absolute DOF difference over global cells; 0.0 means
/// bitwise-identical (all test states are finite).
double max_dof_difference(const SolverBase& a, const SolverBase& b) {
  EXPECT_EQ(a.grid().num_cells(), b.grid().num_cells());
  EXPECT_EQ(a.layout().size(), b.layout().size());
  double worst = 0.0;
  for (int c = 0; c < a.grid().num_cells(); ++c) {
    const double* qa = a.cell_dofs(c);
    const double* qb = b.cell_dofs(c);
    for (std::size_t i = 0; i < a.layout().size(); ++i)
      worst = std::max(worst, std::abs(qa[i] - qb[i]));
  }
  return worst;
}

Simulation run_with(const std::vector<std::string>& args,
                    const std::vector<std::string>& extra) {
  std::vector<std::string> full = args;
  full.insert(full.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

// ---- The Partition rank map --------------------------------------------

GridSpec z_column_spec(int nz) {
  GridSpec spec;
  spec.cells = {2, 2, nz};
  return spec;
}

TEST(RankMap, FreshPartitionMapsEveryShardToRankZero) {
  Partition partition(z_column_spec(4), {1, 1, 4});
  EXPECT_EQ(partition.num_ranks(), 1);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(partition.rank_of(s), 0);
  EXPECT_EQ(partition.shards_of_rank(0).size(), 4u);
}

TEST(RankMap, CountSplitIsContiguousAndRagged) {
  // 5 shards on 2 ranks: the first rank takes the extra shard ({3, 2}).
  Partition partition(z_column_spec(5), {1, 1, 5});
  partition.assign_ranks(2);
  EXPECT_EQ(partition.num_ranks(), 2);
  EXPECT_EQ(partition.shards_of_rank(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(partition.shards_of_rank(1), (std::vector<int>{3, 4}));
  for (int s = 0; s < 5; ++s)
    EXPECT_EQ(partition.rank_of(s), s < 3 ? 0 : 1) << "shard " << s;

  // 5 shards on 3 ranks: {2, 2, 1}.
  Partition three(z_column_spec(5), {1, 1, 5});
  three.assign_ranks(3);
  EXPECT_EQ(three.shards_of_rank(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(three.shards_of_rank(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(three.shards_of_rank(2), (std::vector<int>{4}));
}

TEST(RankMap, WeightedGroupingBalancesMeasuredCost) {
  // Shard 0 carries 4x the cost: the min-max grouping isolates it instead
  // of count-splitting {3, 2} (heaviest rank 6 vs 4).
  Partition partition(z_column_spec(5), {1, 1, 5});
  partition.assign_ranks(2, {4.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(partition.shards_of_rank(0), (std::vector<int>{0}));
  EXPECT_EQ(partition.shards_of_rank(1), (std::vector<int>{1, 2, 3, 4}));
}

TEST(RankMap, MoreRanksThanShardsFails) {
  Partition partition(z_column_spec(2), {1, 1, 2});
  try {
    partition.assign_ranks(3);
    FAIL() << "assign_ranks(3) on 2 shards should throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at least one shard per rank"),
              std::string::npos)
        << e.what();
  }
}

// ---- The shards_per_rank= and schedule= keys ---------------------------

TEST(OversubConfig, ShardsPerRankParsesAndResolvesLocally) {
  const SimulationConfig config =
      parse_simulation_args({"scenario=planewave", "cells=8x8x8",
                             "shards=auto", "shards_per_rank=2"});
  EXPECT_EQ(config.shards_per_rank, 2);
  // Without MPI, shards=auto resolves to shards_per_rank shards.
  const std::array<int, 3> grid = resolve_shard_grid(config);
  EXPECT_EQ(grid[0] * grid[1] * grid[2], 2);

  EXPECT_EQ(parse_simulation_args({"shards_per_rank=auto"}).shards_per_rank,
            0);
  EXPECT_EQ(parse_simulation_args({"schedule=lockstep"}).schedule,
            "lockstep");
  EXPECT_EQ(parse_simulation_args({}).schedule, "deps");

  EXPECT_THROW(parse_simulation_args({"shards_per_rank=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_simulation_args({"schedule=bogus"}),
               std::invalid_argument);
}

TEST(OversubConfig, CanonicalStringKeysTopologyButNotSchedule) {
  const SimulationConfig deps =
      parse_simulation_args({"scenario=planewave", "shards_per_rank=2"});
  SimulationConfig lockstep = deps;
  lockstep.schedule = "lockstep";
  // shards_per_rank changes the resolved decomposition under shards=auto,
  // so it keys the memo cache; the schedule is bitwise-neutral and must
  // not split it.
  EXPECT_NE(canonical_config_string(deps).find("shards_per_rank=2"),
            std::string::npos);
  EXPECT_EQ(canonical_config_string(deps).find("schedule"),
            std::string::npos);
  EXPECT_EQ(canonical_config_string(deps), canonical_config_string(lockstep));

  SimulationConfig other = deps;
  other.shards_per_rank = 4;
  EXPECT_NE(canonical_config_string(deps), canonical_config_string(other));
}

// ---- The scheduler equivalence matrix ----------------------------------

/// shards_per_rank x threads x schedule, all bitwise-equal to the
/// monolithic serial run.
void expect_oversub_invariant(const std::vector<std::string>& args,
                              const std::vector<int>& shards_per_rank) {
  Simulation mono = run_with(args, {"shards=1", "threads=1"});
  EXPECT_EQ(mono.solver().num_shards(), 1);
  for (int spr : shards_per_rank) {
    for (int threads : {1, 4}) {
      for (const std::string schedule : {"deps", "lockstep"}) {
        Simulation sharded = run_with(
            args, {"shards=auto", "shards_per_rank=" + std::to_string(spr),
                   "threads=" + std::to_string(threads),
                   "schedule=" + schedule});
        EXPECT_EQ(sharded.solver().num_shards(), spr);
        EXPECT_EQ(mono.solver().time(), sharded.solver().time());
        EXPECT_EQ(max_dof_difference(mono.solver(), sharded.solver()), 0.0)
            << "shards_per_rank=" << spr << " threads=" << threads
            << " schedule=" << schedule
            << " diverged from the monolithic run";
        if (mono.has_exact_solution())
          EXPECT_EQ(mono.l2_error(), sharded.l2_error())
              << "shards_per_rank=" << spr << " schedule=" << schedule;
      }
    }
  }
}

TEST(OversubSchedule, DepsMatchesLockstepAndMonolithic) {
  expect_oversub_invariant({"scenario=planewave", "order=3", "cells=5x4x3",
                            "t_end=0.08"},
                           {2, 4});
}

TEST(OversubSchedule, DepsMatchesUnderMultiClusterLts) {
  // The softened LOH1 layer derives a genuine multi-cluster schedule, so
  // the deps scheduler pipelines the channel-tagged qavg / qavg_half /
  // qavg_sum exchanges across 2^(K-1) macro substeps.
  const std::vector<std::string> base{
      "scenario=loh1",           "order=3",
      "cells=6x6x6",             "t_end=0.15",
      "lts=on",                  "scenario.layer_cp=1.5",
      "scenario.layer_cs=0.75"};
  Simulation mono = run_with(base, {"shards=1", "threads=1"});
  EXPECT_GT(mono.solver().lts_num_clusters(), 1);
  const std::vector<std::pair<int, int>> cases{{2, 1}, {2, 4}, {4, 1}};
  for (const auto& [spr, threads] : cases) {
    for (const std::string schedule : {"deps", "lockstep"}) {
      Simulation sharded = run_with(
          base, {"shards=auto", "shards_per_rank=" + std::to_string(spr),
                 "threads=" + std::to_string(threads),
                 "schedule=" + schedule});
      EXPECT_EQ(sharded.solver().lts_num_clusters(),
                mono.solver().lts_num_clusters());
      EXPECT_EQ(mono.solver().time(), sharded.solver().time());
      EXPECT_EQ(max_dof_difference(mono.solver(), sharded.solver()), 0.0)
          << "shards_per_rank=" << spr << " threads=" << threads
          << " schedule=" << schedule
          << " diverged from the monolithic multi-cluster run";
    }
  }
}

// ---- Latency-injected reordering ---------------------------------------

/// A simulated cross-rank wire delay genuinely reorders the deps
/// schedule — captures stage eagerly, deliveries mature on deadlines,
/// blocked polls sleep — and the result must still match the
/// zero-latency lockstep run bit for bit.
TEST(OversubSchedule, SimulatedLatencyReorderingStaysBitwise) {
  SimulationConfig config = parse_simulation_args(
      {"scenario=planewave", "order=3", "cells=4x4x8"});
  config.pde = find_scenario(config.scenario)->default_pde();
  const std::shared_ptr<const KernelFactory> pde = find_pde(config.pde);
  const InitialCondition init =
      find_scenario(config.scenario)->initial_condition(pde, config);
  const auto make_shard =
      [&](const Grid& grid) -> std::unique_ptr<SolverBase> {
    return std::make_unique<AderDgSolver>(
        pde->runtime(),
        pde->make_kernel(StpVariant::kAosoaSplitCk, config.order,
                         host_best_isa()),
        grid);
  };
  const auto make_solver = [&](const std::string& schedule) {
    Partition partition(config.grid, {1, 1, 4});
    partition.assign_ranks(2);  // shards 1|2 sit on the virtual rank cut
    auto solver = std::make_unique<ShardedSolver>(
        std::move(partition), make_shard, "inprocess", schedule);
    solver->set_initial_condition(init);
    return solver;
  };

  auto lockstep = make_solver("lockstep");
  auto deps = make_solver("deps");
  deps->set_exchange_backend(std::make_unique<InProcessExchange>(
      deps->partition(), deps->layout().size(),
      /*simulated_cross_rank_latency_seconds=*/2e-3));

  const double dt = lockstep->stable_dt();
  for (int step = 0; step < 3; ++step) {
    lockstep->step(dt);
    deps->step(dt);
  }
  EXPECT_EQ(max_dof_difference(*lockstep, *deps), 0.0)
      << "latency-delayed deliveries changed the bits";
}

// ---- Scheduler telemetry ------------------------------------------------

TEST(OversubTelemetry, SchedulerReportsTaskAndPollCounters) {
  TelemetryRegistry registry(/*spans_enabled=*/true);
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=4x4x4", "shards=auto",
       "shards_per_rank=4", "schedule=deps"});
  EXPECT_NE(sim.summary().find("schedule=deps"), std::string::npos);
  // Drive the solver directly under our own scope (Simulation::run
  // installs the run's own registry).
  const double dt = sim.solver().plan_step(sim.solver().stable_dt());
  {
    TelemetryScope scope(&registry);
    for (int i = 0; i < 3; ++i) sim.solver().step(dt);
  }
  const auto named = registry.named_values();
  ASSERT_EQ(named.count("sched_tasks"), 1u);
  ASSERT_EQ(named.count("sched_ready_depth_sum"), 1u);
  ASSERT_EQ(named.count("sched_blocked_polls"), 1u);
  // Every step runs one interior + one boundary task per shard per phase.
  EXPECT_GT(named.at("sched_tasks"), 0.0);
  // Each pick observed at least the task it picked.
  EXPECT_GE(named.at("sched_ready_depth_sum"), named.at("sched_tasks"));
  EXPECT_GE(named.at("sched_blocked_polls"), 0.0);
}

// ---- VTK series part ids under over-decomposition -----------------------

TEST(OversubVtk, SeriesPartIdsAreDistinctAndStablePerShard) {
  const std::string base = "/tmp/exastp_oversub_series";
  Simulation sim = run_with(
      {"scenario=planewave", "order=3", "cells=4x4x4", "t_end=0.06",
       "output.interval=0.03"},
      {"shards=auto", "shards_per_rank=4", "output.series=" + base});
  const auto* composite =
      dynamic_cast<const ShardedSolver*>(&sim.solver());
  ASSERT_NE(composite, nullptr);
  ASSERT_EQ(composite->num_shards(), 4);

  std::ifstream index(base + ".pvd");
  ASSERT_TRUE(index.good());
  std::stringstream ss;
  ss << index.rdbuf();
  const std::string pvd = ss.str();

  // Count snapshots from part 0's entries, then require every shard's
  // part id to appear exactly once per snapshot — distinct ids, stable
  // across the series (ParaView matches pieces to parts by that id).
  const auto count = [&pvd](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = pvd.find(needle); at != std::string::npos;
         at = pvd.find(needle, at + 1))
      ++n;
    return n;
  };
  const std::size_t snapshots = count("part=\"0\"");
  EXPECT_GE(snapshots, 2u);
  for (int p = 1; p < 4; ++p)
    EXPECT_EQ(count("part=\"" + std::to_string(p) + "\""), snapshots)
        << "part " << p;
  EXPECT_EQ(count("part=\"4\""), 0u);

  // Each indexed piece file exists and is named by its shard id.
  for (std::size_t i = 0; i < snapshots; ++i)
    for (int p = 0; p < 4; ++p) {
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), "_%04zu_p%02d.vtk", i, p);
      EXPECT_NE(pvd.find(suffix), std::string::npos) << suffix;
      EXPECT_TRUE(std::ifstream(base + suffix).good()) << base + suffix;
    }

  // Cleanup (best effort).
  for (int i = 0; i < 8; ++i)
    for (int p = 0; p < 4; ++p) {
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), "_%04d_p%02d.vtk", i, p);
      std::remove((base + suffix).c_str());
    }
  std::remove((base + ".pvd").c_str());
}

}  // namespace
}  // namespace exastp
