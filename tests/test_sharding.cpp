// Domain decomposition: partition/halo-plan correctness, grid-view
// geometry, and the sharded bitwise-equivalence matrix.
//
// The contract under test (see README "Sharding"): for every tested shard
// block grid (ragged splits included), stepper, PDE and thread count, the
// field state after run_until is bitwise-identical to the monolithic
// shards=1 path, and observers (receiver networks, VTK series) produce
// equivalent output. These tests carry the `sharded` ctest label the TSan
// CI job runs.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/engine/sweep.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/sharded_solver.h"

namespace exastp {
namespace {

/// Largest absolute DOF difference over global cells; 0.0 means
/// bitwise-identical (all test states are finite).
double max_dof_difference(const SolverBase& a, const SolverBase& b) {
  EXPECT_EQ(a.grid().num_cells(), b.grid().num_cells());
  EXPECT_EQ(a.layout().size(), b.layout().size());
  double worst = 0.0;
  for (int c = 0; c < a.grid().num_cells(); ++c) {
    const double* qa = a.cell_dofs(c);
    const double* qb = b.cell_dofs(c);
    for (std::size_t i = 0; i < a.layout().size(); ++i)
      worst = std::max(worst, std::abs(qa[i] - qb[i]));
  }
  return worst;
}

Simulation run_with(const std::vector<std::string>& args,
                    const std::vector<std::string>& extra) {
  std::vector<std::string> full = args;
  full.insert(full.end(), extra.begin(), extra.end());
  Simulation sim = Simulation::from_args(full);
  sim.run();
  return sim;
}

/// The acceptance matrix: every decomposition x thread count must be
/// bitwise-identical to the monolithic serial run.
void expect_shard_invariant(const std::vector<std::string>& args,
                            const std::vector<std::string>& shard_grids = {
                                "2x1x1", "2x2x1", "3x2x1"}) {
  Simulation mono = run_with(args, {"shards=1", "threads=1"});
  EXPECT_EQ(mono.solver().num_shards(), 1);
  for (const std::string& shards : shard_grids) {
    for (int threads : {1, 4}) {
      Simulation sharded = run_with(
          args, {"shards=" + shards, "threads=" + std::to_string(threads)});
      EXPECT_GT(sharded.solver().num_shards(), 1) << shards;
      EXPECT_EQ(mono.solver().time(), sharded.solver().time());
      EXPECT_EQ(max_dof_difference(mono.solver(), sharded.solver()), 0.0)
          << "shards=" << shards << " threads=" << threads
          << " diverged from the monolithic run";
      if (mono.has_exact_solution()) {
        EXPECT_EQ(mono.l2_error(), sharded.l2_error())
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(Partition, SplitsAreRaggedAndExhaustive) {
  EXPECT_EQ(Partition::split_sizes(5, 2), (std::vector<int>{3, 2}));
  EXPECT_EQ(Partition::split_sizes(6, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_THROW(Partition::split_sizes(2, 3), std::invalid_argument);

  GridSpec spec;
  spec.cells = {5, 4, 3};
  Partition partition(spec, {2, 2, 1});
  ASSERT_EQ(partition.num_shards(), 4);
  EXPECT_EQ(partition.min_cells_per_shard(), 2 * 2 * 3);
  EXPECT_EQ(partition.max_cells_per_shard(), 3 * 2 * 3);

  // Every global cell is owned by exactly the shard the maps report, and
  // the local <-> global round trip is the identity.
  const int total = 5 * 4 * 3;
  std::vector<int> seen(static_cast<std::size_t>(total), 0);
  for (int s = 0; s < partition.num_shards(); ++s) {
    const Subdomain& sub = partition.subdomain(s);
    for (int c = 0; c < sub.grid.num_cells(); ++c) {
      const int g = partition.global_cell(s, c);
      ASSERT_GE(g, 0);
      ASSERT_LT(g, total);
      ++seen[static_cast<std::size_t>(g)];
      EXPECT_EQ(partition.owner_of(g), s);
      EXPECT_EQ(partition.local_cell(g), c);
    }
  }
  for (int g = 0; g < total; ++g) EXPECT_EQ(seen[static_cast<std::size_t>(g)], 1);
}

TEST(Partition, FactorAssignsShardsToLargeDimensions) {
  EXPECT_EQ(Partition::factor(1, {4, 4, 4}), (std::array<int, 3>{1, 1, 1}));
  EXPECT_EQ(Partition::factor(4, {8, 4, 2}), (std::array<int, 3>{4, 1, 1}));
  EXPECT_EQ(Partition::factor(4, {4, 4, 4}), (std::array<int, 3>{2, 2, 1}));
  // Factors no dimension can absorb shrink the effective shard count.
  EXPECT_EQ(Partition::factor(7, {3, 3, 3}), (std::array<int, 3>{1, 1, 1}));
}

TEST(GridView, GeometryIsBitwiseIdenticalToTheGlobalGrid) {
  GridSpec spec;
  spec.cells = {5, 4, 3};
  spec.origin = {-1.0, 0.25, 2.0};
  spec.extent = {3.0, 2.0, 1.5};
  Grid global(spec);
  Partition partition(spec, {2, 2, 1});
  for (int s = 0; s < partition.num_shards(); ++s) {
    const Grid& view = partition.subdomain(s).grid;
    EXPECT_TRUE(view.partitioned());
    for (int d = 0; d < 3; ++d) EXPECT_EQ(view.dx(d), global.dx(d));
    for (int c = 0; c < view.num_cells(); ++c) {
      const int g = view.global_cell(c);
      EXPECT_EQ(view.cell_origin(c), global.cell_origin(g));
      // locate through the view resolves to the same global cell and the
      // same reference coordinates.
      const auto o = view.cell_origin(c);
      const std::array<double, 3> x{o[0] + 0.3 * view.dx(0),
                                    o[1] + 0.6 * view.dx(1),
                                    o[2] + 0.9 * view.dx(2)};
      std::array<double, 3> xi_view{}, xi_global{};
      EXPECT_EQ(view.global_cell(view.locate(x, &xi_view)),
                global.locate(x, &xi_global));
      EXPECT_EQ(xi_view, xi_global);
    }
  }
  // Points outside a view's box are rejected even though they are inside
  // the domain.
  const Grid& first = partition.subdomain(0).grid;
  EXPECT_THROW(first.locate({1.9, 2.2, 3.4}), std::invalid_argument);
}

TEST(HaloPlan, PeriodicBoundariesWrapAcrossShards) {
  GridSpec spec;
  spec.cells = {4, 4, 4};  // all-periodic default
  Partition partition(spec, {2, 1, 1});
  ASSERT_EQ(partition.num_shards(), 2);
  for (int s = 0; s < 2; ++s) {
    const Subdomain& sub = partition.subdomain(s);
    // Only the x faces are remote (y/z wrap inside the full-span view).
    ASSERT_EQ(sub.halos.size(), 2u);
    EXPECT_EQ(sub.grid.num_halo_cells(), 2 * 4 * 4);
    for (const HaloPlan& plan : sub.halos) {
      EXPECT_EQ(plan.dir, 0);
      EXPECT_EQ(plan.src_shard, 1 - s) << "two shards neighbour each other "
                                          "on both faces (one via the wrap)";
      EXPECT_EQ(plan.src_cells.size(), 16u);
      EXPECT_GE(plan.dst_begin, sub.grid.num_cells());
      // The packed plane hugs the shared face: lower halo <- source's
      // upper plane, upper halo <- source's lower plane.
      const Subdomain& src = partition.subdomain(plan.src_shard);
      for (std::size_t i = 0; i < plan.src_cells.size(); ++i) {
        const auto c = src.grid.coords(plan.src_cells[i]);
        EXPECT_EQ(c[0], plan.side == 0 ? src.size[0] - 1 : 0);
      }
    }
  }
  // neighbor() hands out exactly those halo slots at the view edge.
  const Subdomain& sub = partition.subdomain(0);
  const NeighborRef lower = sub.grid.neighbor(sub.grid.index(0, 2, 1), 0, 0);
  EXPECT_FALSE(lower.boundary);
  EXPECT_GE(lower.cell, sub.grid.num_cells());
  EXPECT_LT(lower.cell, sub.grid.num_cells() + sub.grid.num_halo_cells());
}

TEST(HaloPlan, OutflowAndWallEdgesStayBoundaries) {
  for (const BoundaryKind kind :
       {BoundaryKind::kOutflow, BoundaryKind::kWall}) {
    GridSpec spec;
    spec.cells = {4, 3, 3};
    spec.boundary = {kind, kind, kind};
    Partition partition(spec, {2, 1, 1});
    for (int s = 0; s < 2; ++s) {
      const Subdomain& sub = partition.subdomain(s);
      // Exactly one remote face per shard: the inter-shard interface. The
      // true domain edge builds ghost states, not halos.
      ASSERT_EQ(sub.halos.size(), 1u);
      EXPECT_EQ(sub.halos[0].dir, 0);
      EXPECT_EQ(sub.halos[0].side, s == 0 ? 1 : 0);
      EXPECT_EQ(sub.halos[0].src_shard, 1 - s);
      EXPECT_EQ(sub.grid.num_halo_cells(), 3 * 3);

      const int edge_x = s == 0 ? 0 : sub.size[0] - 1;
      const NeighborRef nb =
          sub.grid.neighbor(sub.grid.index(edge_x, 1, 1), 0, s == 0 ? 0 : 1);
      EXPECT_TRUE(nb.boundary);
      EXPECT_EQ(nb.kind, kind);
    }
  }
}

// ---- Bitwise-equivalence matrix ---------------------------------------
// Ragged decompositions come free from the 5x4x3 box (5 cells over 2 or 3
// x-shards, 4 cells over ... see Partition::split_sizes).

TEST(ShardDeterminism, AderAcousticPlanewave) {
  expect_shard_invariant({"scenario=planewave", "pde=acoustic",
                          "stepper=ader", "order=3", "cells=5x4x3",
                          "t_end=0.08"});
}

TEST(ShardDeterminism, AderMaxwellGaussian) {
  expect_shard_invariant({"scenario=gaussian", "pde=maxwell", "stepper=ader",
                          "order=3", "cells=5x4x3", "t_end=0.08"});
}

TEST(ShardDeterminism, RkAcousticPlanewave) {
  expect_shard_invariant({"scenario=planewave", "pde=acoustic",
                          "stepper=rk4", "order=3", "cells=5x4x3",
                          "t_end=0.08"});
}

TEST(ShardDeterminism, RkMaxwellGaussian) {
  expect_shard_invariant({"scenario=gaussian", "pde=maxwell", "stepper=rk4",
                          "order=3", "cells=5x4x3", "t_end=0.08"});
}

// Non-periodic boundaries: ghost faces at the true domain edge must build
// the same states under sharding (plans exist only between shards).
TEST(ShardDeterminism, AderOutflowWallPeriodicMix) {
  expect_shard_invariant({"scenario=planewave", "order=3", "cells=5x4x3",
                          "bc=outflow,wall,periodic", "t_end=0.08"});
}

// Point sources route to their owning shard (LOH1: heterogeneous material,
// Ricker wavelet, absorbing + wall boundaries, both steppers).
TEST(ShardDeterminism, AderLoh1PointSource) {
  expect_shard_invariant({"scenario=loh1", "stepper=ader", "order=3",
                          "t_end=0.3"},
                         {"2x2x1"});
}

TEST(ShardDeterminism, RkLoh1PointSource) {
  expect_shard_invariant({"scenario=loh1", "stepper=rk4", "order=3",
                          "t_end=0.3"},
                         {"2x2x1"});
}

// ---- Observer equivalence under sharding ------------------------------

TEST(Sharding, ReceiversMatchTheAnalyticPlanewaveAndTheMonolithicRun) {
  // One receiver sits exactly on the upper domain corner — the Grid::locate
  // clamp regression (it used to throw "point outside the domain").
  const std::vector<std::string> args = {
      "scenario=planewave", "order=5",  "cells=4x4x4",
      "t_end=0.2",          "threads=2",
      "receivers=0.3,0.45,0.6;0.5,0.5,0.5;1.0,1.0,1.0"};
  Simulation mono = run_with(args, {"shards=1"});
  Simulation sharded = run_with(args, {"shards=2x2x1"});
  ASSERT_NE(mono.receivers(), nullptr);
  ASSERT_NE(sharded.receivers(), nullptr);
  const ReceiverNetwork& a = *mono.receivers();
  const ReceiverNetwork& b = *sharded.receivers();
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.quantities(), b.quantities());

  // Sharded traces are bitwise-identical to the monolithic ones ...
  for (std::size_t i = 0; i < a.num_samples(); ++i)
    for (std::size_t r = 0; r < a.num_receivers(); ++r)
      for (std::size_t q = 0; q < a.quantities().size(); ++q)
        EXPECT_EQ(a.value(i, r, q), b.value(i, r, q))
            << "sample " << i << " receiver " << r << " slot " << q;

  // ... and track the analytic plane wave. Quantity slots are the evolved
  // quantities in order, so the error quantity's slot is its own index.
  const int quantity = sharded.error_quantity();
  ASSERT_GE(quantity, 0);
  const ExactSolution exact =
      sharded.scenario().exact_solution(sharded.pde(), sharded.config());
  ASSERT_NE(exact, nullptr);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.num_samples(); ++i)
    for (std::size_t r = 0; r < b.num_receivers(); ++r)
      worst = std::max(
          worst, std::abs(b.value(i, r, static_cast<std::size_t>(quantity)) -
                          exact(b.positions()[r], b.times()[i])));
  EXPECT_LT(worst, 2e-3) << "sharded receiver traces drifted off the "
                            "analytic plane wave";
}

/// Reads the first SCALARS block of a legacy-VTK file written by
/// write_vtk_cell_averages (one value per cell, cell-index order).
std::vector<double> read_first_scalars(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("LOOKUP_TABLE", 0) == 0) break;
  std::vector<double> values;
  double v = 0.0;
  while (in >> v) {
    values.push_back(v);
    if (in.peek() == 'S') break;  // next SCALARS section
  }
  return values;
}

TEST(Sharding, VtkSeriesTilesTheDomainIntoPieces) {
  const std::string mono_base = "/tmp/exastp_shard_series_mono";
  const std::string shard_base = "/tmp/exastp_shard_series_split";
  const std::vector<std::string> args = {"scenario=planewave", "order=3",
                                         "cells=4x4x2", "t_end=0.06",
                                         "output.interval=0.03"};
  Simulation mono =
      run_with(args, {"shards=1", "output.series=" + mono_base});
  Simulation sharded =
      run_with(args, {"shards=2x2x1", "output.series=" + shard_base});

  const auto* composite =
      dynamic_cast<const ShardedSolver*>(&sharded.solver());
  ASSERT_NE(composite, nullptr);
  const Partition& partition = composite->partition();

  // The index lists every piece of every snapshot under its part id.
  std::ifstream index(shard_base + ".pvd");
  ASSERT_TRUE(index.good());
  std::stringstream ss;
  ss << index.rdbuf();
  for (int p = 0; p < partition.num_shards(); ++p)
    EXPECT_NE(ss.str().find("part=\"" + std::to_string(p) + "\""),
              std::string::npos);

  // Snapshot 0 reassembled from the pieces equals the monolithic snapshot
  // value-for-value (cell averages of bitwise-identical fields, printed by
  // the same writer).
  const std::vector<double> mono_values =
      read_first_scalars(mono_base + "_0000.vtk");
  ASSERT_EQ(mono_values.size(),
            static_cast<std::size_t>(mono.solver().grid().num_cells()));
  int pieces = 0;
  for (int p = 0; p < partition.num_shards(); ++p) {
    char suffix[24];
    std::snprintf(suffix, sizeof(suffix), "_0000_p%02d.vtk", p);
    const std::vector<double> piece = read_first_scalars(shard_base + suffix);
    ASSERT_EQ(piece.size(), static_cast<std::size_t>(
                                partition.subdomain(p).grid.num_cells()));
    for (std::size_t c = 0; c < piece.size(); ++c)
      EXPECT_EQ(piece[c],
                mono_values[static_cast<std::size_t>(
                    partition.global_cell(p, static_cast<int>(c)))])
          << "piece " << p << " cell " << c;
    ++pieces;
  }
  EXPECT_EQ(pieces, 4);

  // Cleanup (best effort).
  for (int i = 0; i < 8; ++i) {
    char suffix[24];
    std::snprintf(suffix, sizeof(suffix), "_%04d.vtk", i);
    std::remove((mono_base + suffix).c_str());
    for (int p = 0; p < 4; ++p) {
      std::snprintf(suffix, sizeof(suffix), "_%04d_p%02d.vtk", i, p);
      std::remove((shard_base + suffix).c_str());
    }
  }
  std::remove((mono_base + ".pvd").c_str());
  std::remove((shard_base + ".pvd").c_str());
}

TEST(Sharding, SweepAcceptsShardsAsAKey) {
  SweepSpec spec;
  spec.key = "shards";
  spec.values = {"1", "2", "4"};
  std::ostringstream out;
  const int runs = run_sweep({"scenario=planewave", "order=3", "cells=4x4x4",
                              "t_end=0.05", "threads=2"},
                             spec, out);
  EXPECT_EQ(runs, 3);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("shards,", 0), 0u);
  // Sharding never changes the physics: the l2_error column repeats the
  // same value (bitwise, so the formatted text matches) for every count.
  std::string first_error;
  int rows = 0;
  while (std::getline(lines, line)) {
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    const auto c3 = line.find(',', c2 + 1);
    const auto c4 = line.find(',', c3 + 1);
    const std::string err = line.substr(c3 + 1, c4 - c3 - 1);
    if (rows == 0) first_error = err;
    EXPECT_EQ(err, first_error) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 3);
}

TEST(Sharding, SummaryReportsTheEffectiveTopology) {
  Simulation sim = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=5x4x3", "shards=2x2x1",
       "threads=2"});
  const std::string summary = sim.summary();
  EXPECT_NE(summary.find("shards=2x2x1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("threads=2"), std::string::npos) << summary;
  EXPECT_NE(summary.find("cells/shard=12-18"), std::string::npos) << summary;
  EXPECT_EQ(sim.shard_grid(), (std::array<int, 3>{2, 2, 1}));

  // shards=N and shards=auto factor onto the mesh; the summary shows what
  // was actually built.
  Simulation factored = Simulation::from_args(
      {"scenario=planewave", "order=3", "cells=4x4x4", "shards=4"});
  EXPECT_EQ(factored.shard_grid(), (std::array<int, 3>{2, 2, 1}));
  EXPECT_NE(factored.summary().find("shards=2x2x1"), std::string::npos);
}

}  // namespace
}  // namespace exastp
