// Tests for the four STP kernel variants.
//
// The load-bearing property of the whole paper: Generic, LoG, SplitCK and
// AoSoA SplitCK are *the same numerical scheme* — only data layout, loop
// structure and instruction selection differ. We verify:
//   * four-way equivalence of qavg/favg for every PDE x order x ISA sweep,
//   * Taylor exactness of the predictor on polynomial advection solutions,
//   * exact point-source integration for polynomial wavelets,
//   * cross-PDE equivalences (flux-form vs NCP-form advection; elastic vs
//     identity-metric curvilinear elastic),
//   * the footprint claims of Sec. IV-A (O(N^4 m) vs O(N^3 m), 1 MiB L2
//     crossover),
//   * face projection / Rusanov / lift building blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "exastp/common/taylor.h"
#include "exastp/kernels/face.h"
#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/advection.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/pde/elastic.h"
#include "exastp/tensor/transpose.h"

namespace exastp {
namespace {

// Smooth nodal state: waves from low-order trig functions, physical
// parameters varying gently across the cell.
template <class Pde>
std::vector<double> smooth_cell_state(int n) {
  const auto& basis = basis_tables(n);
  std::vector<double> q(static_cast<std::size_t>(n) * n * n * Pde::kQuants);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        const double x = basis.nodes[k1], y = basis.nodes[k2],
                     z = basis.nodes[k3];
        double* node =
            q.data() +
            ((static_cast<std::size_t>(k3) * n + k2) * n + k1) * Pde::kQuants;
        for (int s = 0; s < Pde::kVars; ++s)
          node[s] = std::sin(2.0 * x + s) * std::cos(1.5 * y - 0.3 * s) +
                    0.25 * z;
        if constexpr (std::is_same_v<Pde, AcousticPde>) {
          node[AcousticPde::kRho] = 1.2 + 0.1 * x;
          node[AcousticPde::kC] = 2.0 + 0.2 * y;
        } else if constexpr (std::is_same_v<Pde, ElasticPde>) {
          node[ElasticPde::kRho] = 2.6 + 0.1 * z;
          node[ElasticPde::kCp] = 6.0 + 0.2 * x;
          node[ElasticPde::kCs] = 3.4 + 0.1 * y;
        } else if constexpr (std::is_same_v<Pde, CurvilinearElasticPde>) {
          node[CurvilinearElasticPde::kRho] = 2.6 + 0.1 * z;
          node[CurvilinearElasticPde::kCp] = 6.0 + 0.2 * x;
          node[CurvilinearElasticPde::kCs] = 3.4 + 0.1 * y;
          for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
              node[CurvilinearElasticPde::kMetric + 3 * r + c] =
                  (r == c ? 1.0 : 0.0) + 0.05 * std::sin(x + y + z + r + c);
        }
      }
  return q;
}

struct StpResult {
  std::vector<double> qavg;
  std::array<std::vector<double>, 3> favg;
};

// Runs one variant on an unpadded AoS state and returns unpadded outputs.
template <class Pde>
StpResult run_stp(Pde pde, StpVariant variant, int order, Isa isa,
                  const std::vector<double>& state, double dt,
                  const std::array<double, 3>& inv_dx,
                  const SourceTerm* source = nullptr) {
  StpKernel kernel = make_stp_kernel(pde, variant, order, isa);
  const AosLayout& aos = kernel.layout();
  AlignedVector q(aos.size()), qavg(aos.size());
  std::array<AlignedVector, 3> favg;
  for (auto& f : favg) f.assign(aos.size(), 0.0);
  pad_aos(state.data(), order, Pde::kQuants, q.data(), aos);
  StpOutputs out{qavg.data(), {favg[0].data(), favg[1].data(),
                               favg[2].data()}};
  kernel.run(q.data(), dt, inv_dx, source, out);
  StpResult r;
  const std::size_t tight =
      static_cast<std::size_t>(order) * order * order * Pde::kQuants;
  r.qavg.resize(tight);
  unpad_aos(qavg.data(), aos, Pde::kQuants, r.qavg.data());
  for (int d = 0; d < 3; ++d) {
    r.favg[d].resize(tight);
    unpad_aos(favg[d].data(), aos, Pde::kQuants, r.favg[d].data());
  }
  return r;
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double rel_tol, const std::string& what) {
  ASSERT_EQ(a.size(), b.size());
  const double scale = std::max({max_abs(a), max_abs(b), 1e-30});
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a[i], b[i], rel_tol * scale)
        << what << " at index " << i << " (scale " << scale << ")";
}

struct EquivCase {
  int order;
  Isa isa;
};

void PrintTo(const EquivCase& c, std::ostream* os) {
  *os << "n" << c.order << "_" << isa_name(c.isa);
}

template <class Pde>
class VariantEquivalence : public ::testing::TestWithParam<EquivCase> {
 protected:
  void Check() {
    const auto [order, isa] = this->GetParam();
    if (!host_supports(isa)) GTEST_SKIP();
    auto state = smooth_cell_state<Pde>(order);
    const double h = 0.25;
    const std::array<double, 3> inv_dx{1.0 / h, 1.0 / h, 1.0 / h};
    // CFL-scaled dt keeps the Taylor terms tame at high order.
    const double dt = 0.2 * h / (10.0 * order * order);
    auto ref =
        run_stp(Pde{}, StpVariant::kGeneric, order, Isa::kScalar, state, dt,
                inv_dx);
    for (StpVariant v : {StpVariant::kLog, StpVariant::kSplitCk,
                         StpVariant::kAosoaSplitCk,
                         StpVariant::kSoaUfSplitCk}) {
      auto got = run_stp(Pde{}, v, order, isa, state, dt, inv_dx);
      expect_close(got.qavg, ref.qavg, 1e-9, variant_name(v) + " qavg");
      for (int d = 0; d < 3; ++d)
        expect_close(got.favg[d], ref.favg[d], 1e-9,
                     variant_name(v) + " favg" + std::to_string(d));
    }
  }
};

using AdvEquiv = VariantEquivalence<AdvectionPde>;
using AdvNcpEquiv = VariantEquivalence<AdvectionNcpPde>;
using AcouEquiv = VariantEquivalence<AcousticPde>;
using ElasEquiv = VariantEquivalence<ElasticPde>;
using CurviEquiv = VariantEquivalence<CurvilinearElasticPde>;

TEST_P(AdvEquiv, AllVariantsAgree) { Check(); }
TEST_P(AdvNcpEquiv, AllVariantsAgree) { Check(); }
TEST_P(AcouEquiv, AllVariantsAgree) { Check(); }
TEST_P(ElasEquiv, AllVariantsAgree) { Check(); }
TEST_P(CurviEquiv, AllVariantsAgree) { Check(); }

const EquivCase kEquivCases[] = {
    {2, Isa::kScalar}, {3, Isa::kAvx2},   {4, Isa::kAvx512},
    {5, Isa::kScalar}, {6, Isa::kAvx512}, {8, Isa::kAvx512},
    {9, Isa::kAvx512}, {11, Isa::kAvx512}};

INSTANTIATE_TEST_SUITE_P(Sweep, AdvEquiv, ::testing::ValuesIn(kEquivCases));
INSTANTIATE_TEST_SUITE_P(Sweep, AdvNcpEquiv,
                         ::testing::ValuesIn(kEquivCases));
INSTANTIATE_TEST_SUITE_P(Sweep, AcouEquiv, ::testing::ValuesIn(kEquivCases));
INSTANTIATE_TEST_SUITE_P(Sweep, ElasEquiv, ::testing::ValuesIn(kEquivCases));
INSTANTIATE_TEST_SUITE_P(Sweep, CurviEquiv,
                         ::testing::ValuesIn(kEquivCases));

// ---------------------------------------------------------------------------
// Taylor exactness on polynomial advection.

class PredictorExactness : public ::testing::TestWithParam<StpVariant> {};

TEST_P(PredictorExactness, PolynomialAdvectionIsIntegratedExactly) {
  // q0(x) = (x + 0.5 y)^2 + z has degree 2 per direction; with n >= 4 nodes
  // the spatial representation and all time derivatives are exact, and the
  // CK series terminates, so qavg must match the analytic time average of
  // q0(x - a t) to machine precision.
  const int n = 4;
  const double h = 0.5;
  const std::array<double, 3> inv_dx{1.0 / h, 1.0 / h, 1.0 / h};
  const double dt = 0.05;
  AdvectionPde pde;
  const auto& basis = basis_tables(n);

  auto q0 = [](double x, double y, double z) {
    return (x + 0.5 * y) * (x + 0.5 * y) + z;
  };
  std::vector<double> state(static_cast<std::size_t>(n) * n * n *
                            AdvectionPde::kQuants);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        // Physical coordinates: cell [0,h]^3.
        const double x = h * basis.nodes[k1], y = h * basis.nodes[k2],
                     z = h * basis.nodes[k3];
        double* node = state.data() + ((static_cast<std::size_t>(k3) * n +
                                        k2) * n + k1) * AdvectionPde::kQuants;
        for (int s = 0; s < AdvectionPde::kQuants; ++s)
          node[s] = (s + 1) * q0(x, y, z);
      }

  auto res = run_stp(pde, GetParam(), n, host_best_isa(), state, dt, inv_dx);

  // Analytic time average via 8-point Gauss quadrature in time (exact for
  // the quadratic-in-t integrand).
  auto tq = make_quadrature(8, NodeFamily::kGaussLegendre);
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        const double x = h * basis.nodes[k1], y = h * basis.nodes[k2],
                     z = h * basis.nodes[k3];
        double avg = 0.0;
        for (std::size_t g = 0; g < tq.nodes.size(); ++g) {
          const double t = dt * tq.nodes[g];
          avg += tq.weights[g] * q0(x - pde.velocity[0] * t,
                                    y - pde.velocity[1] * t,
                                    z - pde.velocity[2] * t);
        }
        for (int s = 0; s < AdvectionPde::kQuants; ++s) {
          const std::size_t i = ((static_cast<std::size_t>(k3) * n + k2) * n +
                                 k1) * AdvectionPde::kQuants + s;
          ASSERT_NEAR(res.qavg[i], (s + 1) * avg, 1e-11)
              << "node " << k1 << "," << k2 << "," << k3 << " s=" << s;
        }
      }

  // sum_d favg[d] must equal the time-averaged dq/dt = (q(dt) - q(0)) / dt.
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        const double x = h * basis.nodes[k1], y = h * basis.nodes[k2],
                     z = h * basis.nodes[k3];
        const double expected =
            (q0(x - pde.velocity[0] * dt, y - pde.velocity[1] * dt,
                z - pde.velocity[2] * dt) -
             q0(x, y, z)) /
            dt;
        for (int s = 0; s < AdvectionPde::kQuants; ++s) {
          const std::size_t i = ((static_cast<std::size_t>(k3) * n + k2) * n +
                                 k1) * AdvectionPde::kQuants + s;
          const double got =
              res.favg[0][i] + res.favg[1][i] + res.favg[2][i];
          ASSERT_NEAR(got, (s + 1) * expected, 1e-10);
        }
      }
}

TEST_P(PredictorExactness, ConstantStateIsAFixedPoint) {
  const int n = 5;
  std::vector<double> state(static_cast<std::size_t>(n) * n * n *
                            AcousticPde::kQuants);
  for (std::size_t k = 0; k < state.size() / AcousticPde::kQuants; ++k) {
    double* node = state.data() + k * AcousticPde::kQuants;
    node[0] = 3.0;
    node[1] = -1.0;
    node[2] = 0.5;
    node[3] = 2.0;
    node[AcousticPde::kRho] = 1.0;
    node[AcousticPde::kC] = 2.0;
  }
  auto res = run_stp(AcousticPde{}, GetParam(), n, host_best_isa(), state,
                     0.1, {4.0, 4.0, 4.0});
  expect_close(res.qavg, state, 1e-13, "qavg of constant state");
  for (int d = 0; d < 3; ++d)
    EXPECT_LT(max_abs(res.favg[d]), 1e-11) << "favg dim " << d;
}

TEST_P(PredictorExactness, PolynomialPointSourceIsIntegratedExactly) {
  // Zero-velocity advection + source s(t) = c0 + c1 t on quantity 2:
  // qavg = q0 + psi * (c0 dt/2 + c1 dt^2/6).
  const int n = 4;
  const double h = 1.0, dt = 0.3;
  AdvectionPde pde;
  pde.velocity = {0.0, 0.0, 0.0};
  const auto& basis = basis_tables(n);
  const double c0 = 2.0, c1 = -1.5;
  PolynomialWavelet wavelet({c0, c1});
  AlignedVector psi = project_point_source(basis, {0.4, 0.5, 0.6}, h * h * h);
  SourceTerm src;
  src.psi = psi.data();
  src.quantity = 2;
  for (int o = 0; o <= n; ++o)
    src.dt_derivatives[o] = wavelet.derivative(0.0, o);

  std::vector<double> state(static_cast<std::size_t>(n) * n * n *
                            AdvectionPde::kQuants, 1.0);
  auto res = run_stp(pde, GetParam(), n, host_best_isa(), state, dt,
                     {1.0, 1.0, 1.0}, &src);
  const double factor = c0 * dt / 2.0 + c1 * dt * dt / 6.0;
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  for (std::size_t k = 0; k < nodes; ++k)
    for (int s = 0; s < AdvectionPde::kQuants; ++s) {
      const double expected = 1.0 + (s == 2 ? psi[k] * factor : 0.0);
      ASSERT_NEAR(res.qavg[k * AdvectionPde::kQuants + s], expected, 1e-11)
          << "node " << k << " s " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PredictorExactness,
                         ::testing::Values(StpVariant::kGeneric,
                                           StpVariant::kLog,
                                           StpVariant::kSplitCk,
                                           StpVariant::kAosoaSplitCk),
                         [](const auto& info) {
                           return variant_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Cross-PDE equivalences.

TEST(CrossPde, FluxFormAndNcpFormAdvectionAgree) {
  const int n = 5;
  auto state = smooth_cell_state<AdvectionPde>(n);
  const std::array<double, 3> inv_dx{2.0, 2.0, 2.0};
  const double dt = 0.002;
  auto a = run_stp(AdvectionPde{}, StpVariant::kSplitCk, n, host_best_isa(),
                   state, dt, inv_dx);
  auto b = run_stp(AdvectionNcpPde{}, StpVariant::kSplitCk, n,
                   host_best_isa(), state, dt, inv_dx);
  expect_close(a.qavg, b.qavg, 1e-11, "qavg flux vs ncp");
  for (int d = 0; d < 3; ++d)
    expect_close(a.favg[d], b.favg[d], 1e-11, "favg flux vs ncp");
}

TEST(CrossPde, IdentityMetricCurvilinearMatchesElastic) {
  const int n = 4;
  auto elastic_state = smooth_cell_state<ElasticPde>(n);
  // Same wave/material data, identity metric appended.
  const std::size_t nodes = static_cast<std::size_t>(n) * n * n;
  std::vector<double> curvi_state(nodes * CurvilinearElasticPde::kQuants,
                                  0.0);
  for (std::size_t k = 0; k < nodes; ++k) {
    for (int s = 0; s < 12; ++s)
      curvi_state[k * 21 + s] = elastic_state[k * 12 + s];
    // Cell-wise constant material is required for the flux-form/NCP-form
    // split to commute with the derivative operator.
    curvi_state[k * 21 + ElasticPde::kRho] = 2.7;
    curvi_state[k * 21 + ElasticPde::kCp] = 6.2;
    curvi_state[k * 21 + ElasticPde::kCs] = 3.5;
    elastic_state[k * 12 + ElasticPde::kRho] = 2.7;
    elastic_state[k * 12 + ElasticPde::kCp] = 6.2;
    elastic_state[k * 12 + ElasticPde::kCs] = 3.5;
    for (int r = 0; r < 3; ++r)
      curvi_state[k * 21 + CurvilinearElasticPde::kMetric + 3 * r + r] = 1.0;
  }
  const std::array<double, 3> inv_dx{1.0, 1.0, 1.0};
  const double dt = 0.001;
  auto e = run_stp(ElasticPde{}, StpVariant::kLog, n, host_best_isa(),
                   elastic_state, dt, inv_dx);
  auto c = run_stp(CurvilinearElasticPde{}, StpVariant::kLog, n,
                   host_best_isa(), curvi_state, dt, inv_dx);
  // Compare the nine wave rows.
  for (std::size_t k = 0; k < nodes; ++k)
    for (int s = 0; s < 9; ++s) {
      ASSERT_NEAR(c.qavg[k * 21 + s], e.qavg[k * 12 + s], 1e-10)
          << "qavg node " << k << " s " << s;
      double fe = 0.0, fcv = 0.0;
      for (int d = 0; d < 3; ++d) {
        fe += e.favg[d][k * 12 + s];
        fcv += c.favg[d][k * 21 + s];
      }
      ASSERT_NEAR(fcv, fe, 1e-9) << "sum favg node " << k << " s " << s;
    }
}

// ---------------------------------------------------------------------------
// Footprint claims (Sec. IV-A).

TEST(Footprint, SplitCkShrinksFromNToThe4ToNToThe3) {
  // LoG keeps the whole space-time predictor: O(N^4 m d); SplitCK keeps four
  // cell tensors: O(N^3 m). Doubling N must scale the footprints like N^4
  // and N^3 respectively (padding makes this approximate).
  CurvilinearElasticPde pde;
  auto log4 = make_stp_kernel(pde, StpVariant::kLog, 4, Isa::kAvx512);
  auto log8 = make_stp_kernel(pde, StpVariant::kLog, 8, Isa::kAvx512);
  auto sp4 = make_stp_kernel(pde, StpVariant::kSplitCk, 4, Isa::kAvx512);
  auto sp8 = make_stp_kernel(pde, StpVariant::kSplitCk, 8, Isa::kAvx512);
  const double log_ratio = static_cast<double>(log8.workspace_bytes()) /
                           static_cast<double>(log4.workspace_bytes());
  const double sp_ratio = static_cast<double>(sp8.workspace_bytes()) /
                          static_cast<double>(sp4.workspace_bytes());
  EXPECT_NEAR(log_ratio, 16.0, 2.5);  // ~2^4
  EXPECT_NEAR(sp_ratio, 8.0, 1.0);    // ~2^3
  EXPECT_LT(sp8.workspace_bytes(), log8.workspace_bytes() / 10);
}

TEST(Footprint, LogOverflowsOneMiBL2AroundOrder6) {
  // Sec. IV-A: for a medium 3-D problem the 1 MiB L2 is exceeded from
  // N = 6 with the full space-time storage, while SplitCK stays under it.
  CurvilinearElasticPde pde;
  auto log5 = make_stp_kernel(pde, StpVariant::kLog, 5, Isa::kAvx512);
  auto log6 = make_stp_kernel(pde, StpVariant::kLog, 6, Isa::kAvx512);
  auto sp6 = make_stp_kernel(pde, StpVariant::kSplitCk, 6, Isa::kAvx512);
  const std::size_t mib = 1024 * 1024;
  EXPECT_GT(log6.workspace_bytes(), mib);
  EXPECT_LT(sp6.workspace_bytes(), mib);
  EXPECT_LT(log5.workspace_bytes(), log6.workspace_bytes());
}

TEST(Footprint, GenericReportsItsSpaceTimeArrays) {
  PdeAdapter<AcousticPde> pde;
  GenericStp stp(pde, 4);
  // (n+1 + 3*3n) cell tensors of n^3 * m doubles.
  const std::size_t cell = 4ull * 4 * 4 * AcousticPde::kQuants;
  EXPECT_EQ(stp.workspace_bytes(), (5 + 36) * cell * sizeof(double));
}

// ---------------------------------------------------------------------------
// Face building blocks.

TEST(FaceOps, ProjectionReproducesBoundaryValues) {
  const int n = 5;
  const auto& basis = basis_tables(n);
  AosLayout aos(n, 3, Isa::kAvx512);
  AlignedVector q(aos.size(), 0.0);
  auto f = [](double x, double y, double z, int s) {
    return std::pow(x, s) + y * z + 2.0 * s;
  };
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1)
        for (int s = 0; s < 3; ++s)
          q[aos.idx(k3, k2, k1, s)] =
              f(basis.nodes[k1], basis.nodes[k2], basis.nodes[k3], s);
  FaceLayout flayout(aos);
  AlignedVector face(flayout.size());
  // Right x-face: x = 1, in-face coords (a, b) = (y, z).
  project_to_face(aos, basis, q.data(), 0, 1, face.data());
  for (int b = 0; b < n; ++b)
    for (int a = 0; a < n; ++a)
      for (int s = 0; s < 3; ++s)
        EXPECT_NEAR(face[flayout.idx(b, a, s)],
                    f(1.0, basis.nodes[a], basis.nodes[b], s), 1e-11);
  // Lower z-face: z = 0, in-face coords (a, b) = (x, y).
  project_to_face(aos, basis, q.data(), 2, 0, face.data());
  for (int b = 0; b < n; ++b)
    for (int a = 0; a < n; ++a)
      for (int s = 0; s < 3; ++s)
        EXPECT_NEAR(face[flayout.idx(b, a, s)],
                    f(basis.nodes[a], basis.nodes[b], 0.0, s), 1e-11);
}

TEST(FaceOps, RusanovIsConsistent) {
  // Equal states from both sides must return exactly the physical normal
  // flux (the jump term vanishes).
  const int n = 3;
  PdeAdapter<AcousticPde> pde;
  AosLayout aos(n, AcousticPde::kQuants, Isa::kAvx512);
  FaceLayout fl(aos);
  AlignedVector qf(fl.size(), 0.0);
  for (int k = 0; k < n * n; ++k) {
    double* node = qf.data() + static_cast<std::size_t>(k) * fl.m_pad;
    node[0] = 1.0 + k;
    node[1] = 0.3;
    node[2] = -0.2;
    node[3] = 0.1;
    node[AcousticPde::kRho] = 1.0;
    node[AcousticPde::kC] = 2.0;
  }
  AlignedVector fn(fl.size(), 0.0), fstar(fl.size(), 0.0);
  face_normal_flux(pde, fl, qf.data(), 0, fn.data());
  rusanov_flux(pde, fl, qf.data(), qf.data(), fn.data(), fn.data(), 0,
               fstar.data());
  for (int k = 0; k < n * n; ++k)
    for (int v = 0; v < AcousticPde::kVars; ++v)
      EXPECT_NEAR(fstar[k * fl.m_pad + v], fn[k * fl.m_pad + v], 1e-13);
}

TEST(FaceOps, RusanovUpwindsScalarAdvection) {
  // For rightward advection the numerical flux must equal the left (upwind)
  // state's flux.
  const int n = 2;
  AdvectionPde adv;
  adv.velocity = {1.0, 0.0, 0.0};
  PdeAdapter<AdvectionPde> pde(adv);
  AosLayout aos(n, AdvectionPde::kQuants, Isa::kScalar);
  FaceLayout fl(aos);
  AlignedVector ql(fl.size(), 2.0), qr(fl.size(), 5.0);
  AlignedVector fn_l(fl.size()), fn_r(fl.size()), fstar(fl.size());
  face_normal_flux(pde, fl, ql.data(), 0, fn_l.data());
  face_normal_flux(pde, fl, qr.data(), 0, fn_r.data());
  rusanov_flux(pde, fl, ql.data(), qr.data(), fn_l.data(), fn_r.data(), 0,
               fstar.data());
  for (int k = 0; k < n * n; ++k)
    for (int v = 0; v < AdvectionPde::kVars; ++v)
      EXPECT_NEAR(fstar[k * fl.m_pad + v], fn_l[k * fl.m_pad + v], 1e-13)
          << "upwind flux must come from the left";
}

TEST(FaceOps, NormalFluxCombinesFluxAndNcpForms) {
  // Flux-form and NCP-form advection must produce the same face flux — the
  // property that makes them interchangeable in the corrector.
  const int n = 2;
  PdeAdapter<AdvectionPde> flux_form;
  PdeAdapter<AdvectionNcpPde> ncp_form;
  AosLayout aos(n, AdvectionPde::kQuants, Isa::kScalar);
  FaceLayout fl(aos);
  AlignedVector qf(fl.size());
  for (std::size_t i = 0; i < qf.size(); ++i) qf[i] = 0.1 * i - 1.0;
  AlignedVector fa(fl.size()), fb(fl.size());
  for (int dir = 0; dir < 3; ++dir) {
    face_normal_flux(flux_form, fl, qf.data(), dir, fa.data());
    face_normal_flux(ncp_form, fl, qf.data(), dir, fb.data());
    for (std::size_t i = 0; i < fa.size(); ++i)
      EXPECT_NEAR(fa[i], fb[i], 1e-13);
  }
}

TEST(FaceOps, LiftCorrectionIsLinearInJump) {
  const int n = 4;
  const auto& basis = basis_tables(n);
  AosLayout aos(n, 2, Isa::kAvx2);
  FaceLayout fl(aos);
  AlignedVector fstar(fl.size()), fown(fl.size(), 0.0);
  for (std::size_t i = 0; i < fstar.size(); ++i) fstar[i] = 0.01 * i;
  AlignedVector q1(aos.size(), 0.0), q2(aos.size(), 0.0);
  apply_face_correction(aos, basis, 1, 1, 0.5, fstar.data(), fown.data(),
                        q1.data());
  // Doubling the jump doubles the correction.
  for (auto& v : fstar) v *= 2.0;
  apply_face_correction(aos, basis, 1, 1, 0.5, fstar.data(), fown.data(),
                        q2.data());
  for (std::size_t i = 0; i < q1.size(); ++i)
    EXPECT_NEAR(q2[i], 2.0 * q1[i], 1e-12);
}

TEST(Registry, ParsesVariantNames) {
  EXPECT_EQ(parse_variant("generic"), StpVariant::kGeneric);
  EXPECT_EQ(parse_variant("log"), StpVariant::kLog);
  EXPECT_EQ(parse_variant("splitck"), StpVariant::kSplitCk);
  EXPECT_EQ(parse_variant("aosoa_splitck"), StpVariant::kAosoaSplitCk);
  EXPECT_EQ(parse_variant("aosoa"), StpVariant::kAosoaSplitCk);
  EXPECT_EQ(parse_variant("soa_uf_splitck"), StpVariant::kSoaUfSplitCk);
  EXPECT_THROW(parse_variant("bogus"), std::invalid_argument);
}

TEST(Registry, RejectsTooSmallOrder) {
  EXPECT_THROW(
      make_stp_kernel(AdvectionPde{}, StpVariant::kLog, 1, Isa::kScalar),
      std::invalid_argument);
}

}  // namespace
}  // namespace exastp
