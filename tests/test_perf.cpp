// Tests for flop counters, instruction-mix reporting, peak measurement and
// the report-table helper.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "exastp/perf/flop_count.h"
#include "exastp/perf/instr_mix.h"
#include "exastp/perf/peak.h"
#include "exastp/perf/report.h"

namespace exastp {
namespace {

TEST(FlopCounter, AccumulatesAndResets) {
  FlopCounter c;
  c.add(WidthClass::kScalar, 10);
  c.add(WidthClass::k512, 90);
  EXPECT_EQ(c.total(), 100u);
  EXPECT_DOUBLE_EQ(c.fraction(WidthClass::k512), 0.9);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.fraction(WidthClass::k512), 0.0);
}

TEST(FlopCounter, SectionMeasuresDelta) {
  FlopCounter::instance().reset();
  FlopCounter::instance().add(WidthClass::k256, 50);
  FlopSection section;
  FlopCounter::instance().add(WidthClass::k256, 7);
  FlopCounter::instance().add(WidthClass::kScalar, 3);
  FlopCounter d = section.delta();
  EXPECT_EQ(d.flops[static_cast<int>(WidthClass::k256)], 7u);
  EXPECT_EQ(d.flops[static_cast<int>(WidthClass::kScalar)], 3u);
  EXPECT_EQ(d.total(), 10u);
  FlopCounter::instance().reset();
}

TEST(FlopCounter, PackedHelperSplitsRemainder) {
  FlopCounter::instance().reset();
  count_packed_flops(Isa::kAvx512, 13, 10);  // 8 packed lanes + 5 remainder
  const auto& f = FlopCounter::instance().flops;
  EXPECT_EQ(f[static_cast<int>(WidthClass::k512)], 80u);
  EXPECT_EQ(f[static_cast<int>(WidthClass::kScalar)], 50u);
  FlopCounter::instance().reset();
}

TEST(InstrMix, PercentagesSumTo100) {
  FlopCounter c;
  c.add(WidthClass::kScalar, 25);
  c.add(WidthClass::k128, 25);
  c.add(WidthClass::k256, 25);
  c.add(WidthClass::k512, 25);
  InstrMix mix = instruction_mix(c);
  EXPECT_DOUBLE_EQ(mix.scalar() + mix.p128() + mix.p256() + mix.p512(),
                   100.0);
  EXPECT_DOUBLE_EQ(mix.packed(), 75.0);
}

TEST(InstrMix, EmptyCounterGivesZeros) {
  InstrMix mix = instruction_mix(FlopCounter{});
  for (double p : mix.percent) EXPECT_EQ(p, 0.0);
}

TEST(InstrMix, FormatContainsAllClasses) {
  FlopCounter c;
  c.add(WidthClass::k512, 100);
  const std::string s = format_mix(instruction_mix(c));
  EXPECT_NE(s.find("scalar"), std::string::npos);
  EXPECT_NE(s.find("512"), std::string::npos);
  EXPECT_NE(s.find("100.0"), std::string::npos);
}

TEST(Peak, MeasurementsArePositiveAndOrdered) {
  // Wider ISA must never be slower than scalar on the same machine (both
  // measured; small timing noise tolerated via the 0.8 factor).
  const double scalar = measure_peak_gflops(Isa::kScalar, 0.05);
  EXPECT_GT(scalar, 0.0);
  if (host_supports(Isa::kAvx512)) {
    const double wide = measure_peak_gflops(Isa::kAvx512, 0.05);
    EXPECT_GT(wide, 0.8 * scalar);
  }
  EXPECT_GT(available_peak_gflops(), 0.0);
  // Cached value is stable.
  EXPECT_EQ(available_peak_gflops(), available_peak_gflops());
}

TEST(ReportTable, PrintsAndWritesCsv) {
  ReportTable table({"order", "value"});
  table.add_row({"4", ReportTable::num(1.23456, 3)});
  table.add_row({"5", ReportTable::num(7.0, 1)});
  EXPECT_EQ(ReportTable::num(1.23456, 3), "1.235");
  const std::string path = "/tmp/exastp_report_test.csv";
  table.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "order,value");
  std::getline(in, line);
  EXPECT_EQ(line, "4,1.235");
  std::remove(path.c_str());
}

TEST(ReportTable, RejectsMismatchedRow) {
  ReportTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace exastp

namespace exastp {
namespace {

TEST(AsciiChart, RendersAllSeriesSymbols) {
  AsciiChart chart("y vs x", 30, 8);
  chart.add_series("a", {1, 2, 3}, {0.0, 5.0, 10.0});
  chart.add_series("b", {1, 2, 3}, {10.0, 5.0, 0.0});
  ::testing::internal::CaptureStdout();
  chart.print("test chart");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("[*] a"), std::string::npos);
  EXPECT_NE(out.find("[o] b"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("y vs x"), std::string::npos);
}

TEST(AsciiChart, RejectsDegenerateInput) {
  EXPECT_THROW(AsciiChart("y", 5, 2), std::invalid_argument);
  AsciiChart chart("y");
  EXPECT_THROW(chart.add_series("a", {1.0, 2.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(chart.add_series("a", {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace exastp
