// Integration tests for the full ADER-DG solver: exact transport, plane
// waves, convergence orders, conservation, boundary conditions, point
// sources, blow-up detection and cross-variant trajectory equality.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/pde/advection.h"
#include "exastp/pde/elastic.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/norms.h"
#include "exastp/solver/output.h"

namespace exastp {
namespace {

constexpr double kPi = std::numbers::pi;

template <class Pde>
AderDgSolver make_solver(Pde pde, StpVariant variant, int order,
                         const GridSpec& spec) {
  auto runtime = std::make_shared<PdeAdapter<Pde>>(pde);
  StpKernel kernel = make_stp_kernel(pde, variant, order, host_best_isa());
  return AderDgSolver(runtime, std::move(kernel), spec);
}

GridSpec unit_cube(int cells) {
  GridSpec s;
  s.cells = {cells, cells, cells};
  s.origin = {0.0, 0.0, 0.0};
  s.extent = {1.0, 1.0, 1.0};
  return s;
}

// Smooth periodic profile advected diagonally.
void advection_ic(const std::array<double, 3>& x, double* q) {
  const double v = std::sin(2.0 * kPi * x[0]) * std::cos(2.0 * kPi * x[1]) +
                   0.3 * std::sin(2.0 * kPi * x[2]);
  for (int s = 0; s < AdvectionPde::kQuants; ++s) q[s] = (s + 1) * v;
}

double advection_exact(const AdvectionPde& pde,
                       const std::array<double, 3>& x, double t, int s) {
  std::array<double, 3> y{x[0] - pde.velocity[0] * t,
                          x[1] - pde.velocity[1] * t,
                          x[2] - pde.velocity[2] * t};
  const double v = std::sin(2.0 * kPi * y[0]) * std::cos(2.0 * kPi * y[1]) +
                   0.3 * std::sin(2.0 * kPi * y[2]);
  return (s + 1) * v;
}

TEST(SolverAdvection, TransportsProfileAccurately) {
  AdvectionPde pde;
  auto solver = make_solver(pde, StpVariant::kSplitCk, 5, unit_cube(3));
  solver.set_initial_condition(advection_ic);
  solver.run_until(0.1);
  const double err = l2_error(
      solver, 0,
      [&](const std::array<double, 3>& x, double t) {
        return advection_exact(pde, x, t, 0);
      });
  EXPECT_LT(err, 5e-4) << "order-5 transport error too large";
}

TEST(SolverAdvection, ConservesMassOnPeriodicMesh) {
  AdvectionPde pde;
  auto solver = make_solver(pde, StpVariant::kLog, 4, unit_cube(3));
  solver.set_initial_condition(advection_ic);
  const double before = integral(solver, 1);
  solver.run_until(0.05);
  const double after = integral(solver, 1);
  EXPECT_NEAR(after, before, 1e-11);
}

class ConvergenceP : public ::testing::TestWithParam<int> {};

TEST_P(ConvergenceP, RefinementShowsDesignOrder) {
  // Order N (N nodes/dim) should converge at O(h^N). A 1-D column keeps the
  // runtime low and the asymptotic regime reachable; we accept anything
  // safely above N - 0.7 on one refinement step.
  const int order = GetParam();
  AdvectionPde pde;
  pde.velocity = {1.0, 0.0, 0.0};
  const double t_end = 0.1;
  double errs[2];
  int meshes[2] = {4, 8};
  for (int i = 0; i < 2; ++i) {
    GridSpec spec;
    spec.cells = {meshes[i], 1, 1};
    auto solver = make_solver(pde, StpVariant::kSplitCk, order, spec);
    solver.set_initial_condition(
        [](const std::array<double, 3>& x, double* q) {
          const double v = std::sin(2.0 * kPi * x[0]);
          for (int s = 0; s < AdvectionPde::kQuants; ++s) q[s] = v;
        });
    solver.run_until(t_end);
    errs[i] = l2_error(solver, 0,
                       [&](const std::array<double, 3>& x, double t) {
                         return std::sin(2.0 * kPi * (x[0] - t));
                       });
  }
  const double rate = std::log2(errs[0] / errs[1]);
  EXPECT_GT(rate, order - 0.7)
      << "errors " << errs[0] << " -> " << errs[1];
}

INSTANTIATE_TEST_SUITE_P(Orders, ConvergenceP, ::testing::Values(2, 3, 4));

TEST(SolverAcoustic, PlaneWaveMatchesDispersionRelation) {
  // p = sin(k.x - w t), v = khat/(rho c) p, w = c |k|: exact solution of the
  // acoustic system on the periodic unit cube.
  AcousticPde pde;
  const double rho = 1.0, c = 1.0;
  const double k = 2.0 * kPi;
  auto solver = make_solver(pde, StpVariant::kAosoaSplitCk, 5, unit_cube(3));
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        const double p = std::sin(k * x[0]);
        q[AcousticPde::kP] = p;
        q[AcousticPde::kVx] = p / (rho * c);
        q[AcousticPde::kVx + 1] = 0.0;
        q[AcousticPde::kVx + 2] = 0.0;
        q[AcousticPde::kRho] = rho;
        q[AcousticPde::kC] = c;
      });
  solver.run_until(0.1);
  const double w = c * k;
  const double err = l2_error(
      solver, AcousticPde::kP,
      [&](const std::array<double, 3>& x, double t) {
        return std::sin(k * x[0] - w * t);
      });
  EXPECT_LT(err, 5e-4);
}

TEST(SolverAcoustic, WallBoundaryKeepsEnergyBounded) {
  AcousticPde pde;
  GridSpec spec = unit_cube(2);
  spec.boundary = {BoundaryKind::kWall, BoundaryKind::kWall,
                   BoundaryKind::kWall};
  auto solver = make_solver(pde, StpVariant::kSplitCk, 4, spec);
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        const double r2 = (x[0] - 0.5) * (x[0] - 0.5) +
                          (x[1] - 0.5) * (x[1] - 0.5) +
                          (x[2] - 0.5) * (x[2] - 0.5);
        q[AcousticPde::kP] = std::exp(-40.0 * r2);
        q[1] = q[2] = q[3] = 0.0;
        q[AcousticPde::kRho] = 1.0;
        q[AcousticPde::kC] = 1.0;
      });
  auto energy = [&] {
    double e = 0.0;
    for (int s = 0; s < 4; ++s) {
      // Crude quadratic functional via L2 norm against zero.
      const double n = l2_error(
          solver, s, [](const std::array<double, 3>&, double) { return 0.0; });
      e += n * n;
    }
    return e;
  };
  const double e0 = energy();
  solver.run_until(0.2);
  EXPECT_LT(energy(), 1.5 * e0) << "reflecting box must not gain energy";
}

TEST(SolverAcoustic, OutflowDrainsPulse) {
  AcousticPde pde;
  GridSpec spec = unit_cube(2);
  spec.boundary = {BoundaryKind::kOutflow, BoundaryKind::kOutflow,
                   BoundaryKind::kOutflow};
  auto solver = make_solver(pde, StpVariant::kSplitCk, 4, spec);
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        const double r2 = (x[0] - 0.5) * (x[0] - 0.5) +
                          (x[1] - 0.5) * (x[1] - 0.5) +
                          (x[2] - 0.5) * (x[2] - 0.5);
        q[AcousticPde::kP] = std::exp(-40.0 * r2);
        q[1] = q[2] = q[3] = 0.0;
        q[AcousticPde::kRho] = 1.0;
        q[AcousticPde::kC] = 1.0;
      });
  const double p0 = l2_error(
      solver, 0, [](const std::array<double, 3>&, double) { return 0.0; });
  solver.run_until(1.2);  // pulse leaves the unit box at c = 1
  const double p1 = l2_error(
      solver, 0, [](const std::array<double, 3>&, double) { return 0.0; });
  EXPECT_LT(p1, 0.35 * p0) << "pulse should mostly radiate away";
}

TEST(SolverVariants, OneStepTrajectoriesAgree) {
  AcousticPde pde;
  const int order = 4;
  std::vector<std::vector<double>> states;
  for (StpVariant v : kAllVariants) {
    auto solver = make_solver(pde, v, order, unit_cube(2));
    solver.set_initial_condition(
        [&](const std::array<double, 3>& x, double* q) {
          q[0] = std::sin(2.0 * kPi * x[0]) + std::cos(2.0 * kPi * x[2]);
          q[1] = 0.1;
          q[2] = -0.2;
          q[3] = 0.05;
          q[AcousticPde::kRho] = 1.0;
          q[AcousticPde::kC] = 2.0;
        });
    solver.step(1e-3);
    solver.step(1e-3);
    // Collect unpadded nodal values of quantity 0..3 of every cell.
    std::vector<double> snapshot;
    const auto& layout = solver.layout();
    for (int c = 0; c < solver.grid().num_cells(); ++c) {
      const double* qc = solver.cell_dofs(c);
      for (int k3 = 0; k3 < order; ++k3)
        for (int k2 = 0; k2 < order; ++k2)
          for (int k1 = 0; k1 < order; ++k1)
            for (int s = 0; s < 4; ++s)
              snapshot.push_back(qc[layout.idx(k3, k2, k1, s)]);
    }
    states.push_back(std::move(snapshot));
  }
  for (std::size_t v = 1; v < states.size(); ++v) {
    ASSERT_EQ(states[v].size(), states[0].size());
    for (std::size_t i = 0; i < states[0].size(); ++i)
      ASSERT_NEAR(states[v][i], states[0][i], 1e-10)
          << "variant " << v << " diverged at " << i;
  }
}

TEST(SolverSource, PointSourceInjectsEnergy) {
  AcousticPde pde;
  // Odd cell count puts the source at the centre of the middle cell, so the
  // response must be mirror-symmetric.
  auto solver = make_solver(pde, StpVariant::kSplitCk, 4, unit_cube(3));
  solver.set_initial_condition(
      [](const std::array<double, 3>&, double* q) {
        q[0] = q[1] = q[2] = q[3] = 0.0;
        q[AcousticPde::kRho] = 1.0;
        q[AcousticPde::kC] = 1.0;
      });
  MeshPointSource src;
  src.position = {0.5, 0.5, 0.5};
  src.quantity = AcousticPde::kP;
  src.wavelet = std::make_shared<RickerWavelet>(4.0, 0.25);
  solver.add_point_source(src);
  solver.run_until(0.3);
  const double p = l2_error(
      solver, 0, [](const std::array<double, 3>&, double) { return 0.0; });
  EXPECT_GT(p, 1e-4) << "source produced no field";
  // The pressure field stays finite and roughly symmetric: sample two
  // mirror points.
  const double a = solver.sample({0.25, 0.5, 0.5}, 0);
  const double b = solver.sample({0.75, 0.5, 0.5}, 0);
  EXPECT_NEAR(a, b, 1e-6 + 0.05 * std::abs(a));
}

TEST(SolverSource, RejectsDuplicateSourceCellsAndBadQuantity) {
  AcousticPde pde;
  auto solver = make_solver(pde, StpVariant::kGeneric, 3, unit_cube(2));
  MeshPointSource src;
  src.position = {0.3, 0.3, 0.3};
  src.quantity = 0;
  src.wavelet = std::make_shared<RickerWavelet>(2.0, 0.1);
  solver.add_point_source(src);
  EXPECT_THROW(solver.add_point_source(src), std::invalid_argument);
  MeshPointSource bad = src;
  bad.position = {0.8, 0.8, 0.8};
  bad.quantity = AcousticPde::kRho;  // parameters cannot receive sources
  EXPECT_THROW(solver.add_point_source(bad), std::invalid_argument);
}

TEST(SolverRobustness, BlowUpIsDetected) {
  AdvectionPde pde;
  auto solver = make_solver(pde, StpVariant::kLog, 4, unit_cube(2));
  solver.set_initial_condition(advection_ic);
  // A grossly unstable step: 1000x the CFL limit.
  const double dt = 1000.0 * solver.stable_dt();
  EXPECT_THROW(
      {
        for (int i = 0; i < 50; ++i) solver.step(dt);
      },
      std::runtime_error);
}

TEST(SolverRobustness, RejectsNonPositiveDt) {
  AdvectionPde pde;
  auto solver = make_solver(pde, StpVariant::kGeneric, 3, unit_cube(2));
  EXPECT_THROW(solver.step(0.0), std::invalid_argument);
  EXPECT_THROW(solver.step(-0.1), std::invalid_argument);
}

TEST(SolverSampling, ReproducesInitialConditionPointwise) {
  AdvectionPde pde;
  auto solver = make_solver(pde, StpVariant::kGeneric, 5, unit_cube(2));
  solver.set_initial_condition(advection_ic);
  for (auto& x : std::vector<std::array<double, 3>>{
           {0.1, 0.2, 0.3}, {0.5, 0.5, 0.5}, {0.9, 0.05, 0.61}}) {
    double node[AdvectionPde::kQuants];
    advection_ic(x, node);
    // Order-5 interpolation of a smooth profile on a half-size cell: allow
    // interpolation error.
    EXPECT_NEAR(solver.sample(x, 2), node[2], 1.5e-2);
  }
}

TEST(SolverDt, ScalesInverselyWithWaveSpeedAndOrder) {
  AcousticPde pde;
  auto make_with_c = [&](double c, int order) {
    auto solver = make_solver(pde, StpVariant::kGeneric, order, unit_cube(2));
    solver.set_initial_condition(
        [&](const std::array<double, 3>&, double* q) {
          q[0] = q[1] = q[2] = q[3] = 0.0;
          q[AcousticPde::kRho] = 1.0;
          q[AcousticPde::kC] = c;
        });
    return solver.stable_dt();
  };
  EXPECT_NEAR(make_with_c(1.0, 4) / make_with_c(2.0, 4), 2.0, 1e-10);
  EXPECT_GT(make_with_c(1.0, 3), make_with_c(1.0, 6));
}

}  // namespace
}  // namespace exastp
