// E8 (Sec. III-B): mini-GEMM microkernels vs the naive triple loop on the
// exact tensor-slice shapes the STP kernels issue, via google-benchmark.
// This is the LIBXSMM-substitution sanity check: the ISA paths must deliver
// clear speedups over the reference loop on every shape class.
#include <benchmark/benchmark.h>

#include "exastp/common/aligned.h"
#include "exastp/gemm/gemm.h"

namespace {

using namespace exastp;

struct Shape {
  int m, n, k;
};

// Slice shapes for the m=21 elastic benchmark (mPad = 24) at orders 6/8/11:
// AoS x-derivative (D x slice), fused y-slab, AoSoA x-line (slice x D^T).
const Shape kShapes[] = {
    {6, 24, 6},    // AoS x, order 6
    {8, 24, 8},    // AoS x, order 8
    {11, 24, 11},  // AoS x, order 11
    {8, 192, 8},   // AoS y fused, order 8
    {11, 264, 11}, // AoS y fused, order 11
    {21, 8, 8},    // AoSoA x, order 8
    {21, 16, 11},  // AoSoA x, order 11
};

void run_gemm(benchmark::State& state, Isa isa, bool reference) {
  const Shape shape = kShapes[state.range(0)];
  if (isa != Isa::kScalar && !host_supports(isa)) {
    state.SkipWithError("host lacks ISA");
    return;
  }
  AlignedVector a(static_cast<std::size_t>(shape.m) * shape.k, 1.5);
  AlignedVector b(static_cast<std::size_t>(shape.k) * shape.n, -0.5);
  AlignedVector c(static_cast<std::size_t>(shape.m) * shape.n, 0.0);
  for (auto _ : state) {
    if (reference) {
      gemm_reference(true, 1.0, shape.m, shape.n, shape.k, a.data(), shape.k,
                     b.data(), shape.n, c.data(), shape.n);
    } else {
      gemm_acc(isa, shape.m, shape.n, shape.k, a.data(), shape.k, b.data(),
               shape.n, c.data(), shape.n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * shape.m * shape.n * shape.k * state.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// Float GEMM on the same shapes: the fp32 storage path's microkernels
// (identical schedule, twice the lanes per vector). Compare against the
// double rows to see the fp32 arithmetic headroom in isolation.
void run_gemm_f32(benchmark::State& state, Isa isa) {
  const Shape shape = kShapes[state.range(0)];
  if (isa != Isa::kScalar && !host_supports(isa)) {
    state.SkipWithError("host lacks ISA");
    return;
  }
  AlignedVectorF a(static_cast<std::size_t>(shape.m) * shape.k, 1.5f);
  AlignedVectorF b(static_cast<std::size_t>(shape.k) * shape.n, -0.5f);
  AlignedVectorF c(static_cast<std::size_t>(shape.m) * shape.n, 0.0f);
  for (auto _ : state) {
    gemm_acc(isa, shape.m, shape.n, shape.k, a.data(), shape.k, b.data(),
             shape.n, c.data(), shape.n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * shape.m * shape.n * shape.k * state.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_Naive(benchmark::State& state) {
  run_gemm(state, Isa::kScalar, /*reference=*/true);
}
void BM_Baseline(benchmark::State& state) {
  run_gemm(state, Isa::kScalar, /*reference=*/false);
}
void BM_Avx2(benchmark::State& state) {
  run_gemm(state, Isa::kAvx2, /*reference=*/false);
}
void BM_Avx512(benchmark::State& state) {
  run_gemm(state, Isa::kAvx512, /*reference=*/false);
}
void BM_Avx2F32(benchmark::State& state) {
  run_gemm_f32(state, Isa::kAvx2);
}
void BM_Avx512F32(benchmark::State& state) {
  run_gemm_f32(state, Isa::kAvx512);
}

}  // namespace

BENCHMARK(BM_Naive)->DenseRange(0, 6);
BENCHMARK(BM_Baseline)->DenseRange(0, 6);
BENCHMARK(BM_Avx2)->DenseRange(0, 6);
BENCHMARK(BM_Avx512)->DenseRange(0, 6);
BENCHMARK(BM_Avx2F32)->DenseRange(0, 6);
BENCHMARK(BM_Avx512F32)->DenseRange(0, 6);

BENCHMARK_MAIN();
