// Thread-scaling bench: the planewave workload stepped with 1..N threads.
//
// Measures wall clock per ADER-DG step (predictor + corrector, the paper's
// hot path) through the Simulation façade — exactly what `threads=N` gives
// an exastp_run user — and prints steps/s plus the speedup over serial.
// The per-cell work is embarrassingly parallel, so the expectation on a
// dedicated machine is near-linear scaling until memory bandwidth or core
// count saturates (CI's bench-smoke job archives this output per commit).
//
//   bench/bench_threads [max_threads] [order] [cells_per_dim]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exastp/common/parallel.h"
#include "exastp/engine/simulation.h"

using namespace exastp;
using exastp::bench::time_fixed_steps;

namespace {

Simulation make_sim(int threads, int order, int cells) {
  return Simulation::from_args(
      {"scenario=planewave", "stepper=ader", "variant=aosoa_splitck",
       "order=" + std::to_string(order),
       "cells=" + std::to_string(cells),
       "threads=" + std::to_string(threads)});
}

}  // namespace

int main(int argc, char** argv) {
  const int max_threads = argc > 1 ? std::atoi(argv[1]) : hardware_threads();
  const int order = argc > 2 ? std::atoi(argv[2]) : 5;
  const int cells = argc > 3 ? std::atoi(argv[3]) : 6;

  // Calibrate the step count so the serial run takes ~1 s.
  Simulation probe = make_sim(1, order, cells);
  const double probe_seconds = time_fixed_steps(probe, 2) / 2.0;
  const int steps =
      std::max(4, static_cast<int>(1.0 / std::max(probe_seconds, 1e-6)));

  std::printf("# thread scaling — %s\n", probe.summary().c_str());
  std::printf("# hardware threads: %d, timed steps: %d\n",
              hardware_threads(), steps);
  std::printf("%8s %12s %10s %9s\n", "threads", "seconds", "steps/s",
              "speedup");

  double serial_seconds = 0.0;
  std::vector<int> counts;
  for (int t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads) counts.push_back(max_threads);

  for (int threads : counts) {
    Simulation sim = make_sim(threads, order, cells);
    const double seconds = time_fixed_steps(sim, steps);
    if (threads == 1) serial_seconds = seconds;
    std::printf("%8d %12.4f %10.2f %8.2fx\n", threads, seconds,
                steps / seconds, serial_seconds / seconds);
  }
  return 0;
}
