// E9 (Sec. VI setup): measured per-core FMA peaks per ISA, substituting the
// paper's 60.8 DP GFlop/s Skylake figure, including the effective speedup of
// wide vectors over scalar code (the paper notes AVX-512 yields ~5.6x, not
// 8x, because of the frequency reduction).
#include <cstdio>

#include "exastp/perf/peak.h"
#include "exastp/perf/report.h"

using namespace exastp;

int main() {
  ReportTable table({"isa", "gflops", "vs_scalar"});
  const double scalar = measure_peak_gflops(Isa::kScalar, 0.3);
  table.add_row({"baseline(SSE2)", ReportTable::num(scalar, 1),
                 ReportTable::num(1.0, 2)});
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (!host_supports(isa)) continue;
    const double p = measure_peak_gflops(isa, 0.3);
    table.add_row({std::string(isa_name(isa)), ReportTable::num(p, 1),
                   ReportTable::num(p / scalar, 2)});
  }
  table.print("measured per-core FMA peaks");
  table.write_csv("bench_peak.csv");
  std::printf("\npaper reference: 60.8 GFlop/s per core at 1.9 GHz AVX-512; "
              "effective AVX-512 over scalar ~5.6x after the frequency "
              "reduction\nwrote bench_peak.csv\n");
  return 0;
}
