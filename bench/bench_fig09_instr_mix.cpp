// Reproduces paper Fig. 9: distribution of the SIMD packing width of the
// executed floating-point operations for the four kernel variants at
// orders 4..11 (dynamic FLOP classification, see src/perf/flop_count.h).
//
// Expected shape (paper): Generic mostly scalar with a small
// auto-vectorized share; LoG and SplitCK >80% packed with a ~10% scalar
// tail from the pointwise user functions; AoSoA SplitCK reduces the scalar
// share to 2-4%.
#include <cstdio>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

int main() {
  ReportTable table({"variant", "order", "scalar_pct", "p128_pct", "p256_pct",
                     "p512_pct"});
  for (StpVariant v : kAllVariants) {
    for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
      const Isa isa = v == StpVariant::kGeneric ? Isa::kScalar : Isa::kAvx512;
      Measurement m = measure_stp(v, order, isa, /*min_seconds=*/0.02);
      table.add_row({variant_name(v), std::to_string(order),
                     ReportTable::num(m.mix.scalar(), 1),
                     ReportTable::num(m.mix.p128(), 1),
                     ReportTable::num(m.mix.p256(), 1),
                     ReportTable::num(m.mix.p512(), 1)});
    }
  }
  table.print("Fig. 9 — instruction mix (FLOPs by packing width)");
  table.write_csv("bench_fig09.csv");
  std::printf("\nwrote bench_fig09.csv\n");
  return 0;
}
