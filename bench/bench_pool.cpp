// Ensemble-throughput bench: one batch of identical planewave jobs pushed
// through the SimulationPool at jobs=1/2/4.
//
// The regime is the opposite of bench_shards: many small simulations per
// machine instead of one big one. Reported per concurrency level: batch
// wall seconds, completed jobs/s, aggregate evolved-DOF throughput
// (sum of every job's DOFs x steps over the batch wall time), and the
// kernel-prototype-cache traffic — the cache-sharing effect is the miss
// column staying at ~1 while every other job forks the shared prototype
// instead of rebuilding basis tables and kernel workspace from scratch.
// Memoization is disabled so every job really runs (the pool would
// otherwise collapse the identical batch to a single simulation).
//
//   bench/bench_pool [max_jobs] [batch_size] [order] [cells] [json_path]
//
// With a json_path the same numbers are also written as one JSON document
// (BENCH_ensemble.json in the repo root holds a committed reference run).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exastp/common/parallel.h"
#include "exastp/engine/kernel_cache.h"
#include "exastp/engine/simulation.h"
#include "exastp/service/simulation_pool.h"

using namespace exastp;

namespace {

std::vector<std::string> job_args(int order, int cells) {
  return {"scenario=planewave", "stepper=ader", "variant=aosoa_splitck",
          "order=" + std::to_string(order), "cells=" + std::to_string(cells),
          "t_end=0.1"};
}

struct PoolRun {
  int jobs = 0;
  double seconds = 0.0;
  double jobs_per_s = 0.0;
  double mdof_per_s = 0.0;
  long cache_hits = 0;
  long cache_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int max_jobs = argc > 1 ? std::atoi(argv[1]) : 4;
  const int batch = argc > 2 ? std::atoi(argv[2]) : 12;
  const int order = argc > 3 ? std::atoi(argv[3]) : 4;
  const int cells = argc > 4 ? std::atoi(argv[4]) : 4;
  const std::string json_path = argc > 5 ? argv[5] : "";

  // DOFs one job evolves per step, and the steps it takes — identical for
  // every job in the batch.
  Simulation probe = Simulation::from_args(job_args(order, cells));
  const int steps_per_job = probe.run();
  const double dofs_per_job =
      static_cast<double>(probe.solver().grid().num_cells()) * order * order *
      order * probe.solver().evolved_quantities();

  std::printf("# ensemble throughput — %s\n", probe.summary().c_str());
  std::printf("# batch: %d identical jobs, %d steps x %.0f evolved DOFs "
              "each, memoization off\n",
              batch, steps_per_job, dofs_per_job);
  std::printf("%6s %12s %10s %14s %12s %14s %11s\n", "jobs", "seconds",
              "jobs/s", "agg MDOF/s", "cache hits", "cache misses",
              "vs jobs=1");

  std::vector<PoolRun> runs;
  std::vector<int> levels;
  for (int j = 1; j <= max_jobs; j *= 2) levels.push_back(j);
  if (levels.back() != max_jobs) levels.push_back(max_jobs);

  double serial_jobs_per_s = 0.0;
  for (int jobs : levels) {
    PoolOptions options;
    options.jobs = jobs;
    options.memoize = false;
    SimulationPool pool(options);
    for (int i = 0; i < batch; ++i) pool.submit(job_args(order, cells));

    const KernelCacheStats before = kernel_cache_stats();
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<JobResult> results = pool.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const KernelCacheStats after = kernel_cache_stats();

    for (const JobResult& r : results)
      if (r.status != JobStatus::kDone) {
        std::fprintf(stderr, "job %d failed: %s\n", r.id, r.error.c_str());
        return 1;
      }

    PoolRun run;
    run.jobs = jobs;
    run.seconds = seconds;
    run.jobs_per_s = batch / seconds;
    run.mdof_per_s =
        dofs_per_job * steps_per_job * batch / seconds / 1e6;
    run.cache_hits = after.hits - before.hits;
    run.cache_misses = after.misses - before.misses;
    runs.push_back(run);
    if (jobs == 1) serial_jobs_per_s = run.jobs_per_s;

    std::printf("%6d %12.4f %10.2f %14.2f %12ld %14ld %10.2fx\n", jobs,
                run.seconds, run.jobs_per_s, run.mdof_per_s, run.cache_hits,
                run.cache_misses, run.jobs_per_s / serial_jobs_per_s);
  }
  std::printf("# misses stay at 0 across the whole table (the probe run "
              "built the prototype): every job forks the shared kernel\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"ensemble\",\n"
        << "  \"workload\": \"" << "planewave aosoa_splitck order=" << order
        << " cells=" << cells << "^3 t_end=0.1\",\n"
        << "  \"hardware_threads\": " << hardware_threads() << ",\n"
        << "  \"batch_jobs\": " << batch << ",\n"
        << "  \"steps_per_job\": " << steps_per_job << ",\n"
        << "  \"dofs_per_job\": " << dofs_per_job << ",\n"
        << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const PoolRun& r = runs[i];
      out << "    {\"jobs\": " << r.jobs << ", \"seconds\": " << r.seconds
          << ", \"jobs_per_s\": " << r.jobs_per_s
          << ", \"agg_mdof_per_s\": " << r.mdof_per_s
          << ", \"kernel_cache_hits\": " << r.cache_hits
          << ", \"kernel_cache_misses\": " << r.cache_misses << "}"
          << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
