// Reproduces the Sec. IV-A footprint analysis (E5 in DESIGN.md): kernel
// workspace per variant and order for the m = 21 benchmark, against the
// 1 MiB Skylake-SP L2 budget. The paper's claim: the generic/LoG space-time
// storage is O(N^{d+1} m d) and exceeds L2 from order ~6, SplitCK's
// O(N^d m) stays under it through order 11.
#include <cstdio>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

int main() {
  constexpr std::size_t kL2 = 1024 * 1024;
  ReportTable table({"order", "generic_KiB", "log_KiB", "splitck_KiB",
                     "aosoa_KiB", "log_over_L2", "splitck_over_L2"});
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    CurvilinearElasticPde pde;
    auto generic =
        make_stp_kernel(pde, StpVariant::kGeneric, order, Isa::kScalar);
    auto log = make_stp_kernel(pde, StpVariant::kLog, order, Isa::kAvx512);
    auto sp =
        make_stp_kernel(pde, StpVariant::kSplitCk, order, Isa::kAvx512);
    auto ao =
        make_stp_kernel(pde, StpVariant::kAosoaSplitCk, order, Isa::kAvx512);
    table.add_row({std::to_string(order),
                   std::to_string(generic.workspace_bytes() / 1024),
                   std::to_string(log.workspace_bytes() / 1024),
                   std::to_string(sp.workspace_bytes() / 1024),
                   std::to_string(ao.workspace_bytes() / 1024),
                   log.workspace_bytes() > kL2 ? "yes" : "no",
                   sp.workspace_bytes() > kL2 ? "yes" : "no"});
  }
  table.print("Sec. IV-A — kernel workspace vs 1 MiB L2");
  table.write_csv("bench_footprint.csv");

  // Scaling check: fitted exponents of the footprint growth.
  CurvilinearElasticPde pde;
  auto ws = [&](StpVariant v, int n) {
    return static_cast<double>(
        make_stp_kernel(pde, v, n, Isa::kAvx512).workspace_bytes());
  };
  std::printf(
      "\nfootprint growth order->2x order: LoG x%.1f (O(N^4) predicts 16), "
      "SplitCK x%.1f (O(N^3) predicts 8)\nwrote bench_footprint.csv\n",
      ws(StpVariant::kLog, 8) / ws(StpVariant::kLog, 4),
      ws(StpVariant::kSplitCk, 8) / ws(StpVariant::kSplitCk, 4));
  return 0;
}
