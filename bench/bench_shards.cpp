// Shard-scaling bench: the planewave workload stepped under growing domain
// decompositions.
//
// Measures wall clock per ADER-DG step through the Simulation façade with
// shards=N — exactly what an exastp_run user gets — and reports steps/s
// plus aggregate and per-shard degrees-of-freedom throughput. Shards step
// sequentially inside one process (the decomposition is the MPI seam, not
// an extra parallel layer), so the interesting numbers are the overhead
// columns: how much the pack/swap/unpack halo traffic and the per-shard
// traversal split cost against the monolithic run at the same thread
// count (CI's bench-smoke job archives this output per commit).
//
//   bench/bench_shards [max_shards] [order] [cells_per_dim] [threads]
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "exastp/common/parallel.h"
#include "exastp/common/simd.h"
#include "exastp/engine/kernel_cache.h"
#include "exastp/engine/lts_clusters.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/engine/simulation.h"
#include "exastp/mesh/balance_table.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/sharded_solver.h"
#include "exastp/telemetry/telemetry.h"

using namespace exastp;
using exastp::bench::time_fixed_steps;

namespace {

Simulation make_sim(int shards, int threads, int order, int cells) {
  return Simulation::from_args(
      {"scenario=planewave", "stepper=ader", "variant=aosoa_splitck",
       "order=" + std::to_string(order), "cells=" + std::to_string(cells),
       "threads=" + std::to_string(threads),
       "shards=" + std::to_string(shards)});
}

// Per-shard sweep nanoseconds of `steps` LTS macro steps, measured from
// the shard-track spans (shard_interior/shard_boundary carry the shard id
// as their telemetry track). One untimed warmup step precedes the scope
// so cold caches don't land on shard 0.
std::vector<double> measure_shard_ns(ShardedSolver& solver, int steps) {
  const double dt = solver.plan_step(solver.stable_dt());
  solver.step(dt);
  TelemetryRegistry registry(/*spans_enabled=*/true);
  std::vector<double> ns(static_cast<std::size_t>(solver.num_shards()), 0.0);
  {
    TelemetryScope scope(&registry);
    for (int i = 0; i < steps; ++i) solver.step(dt);
  }
  for (int s = 0; s < solver.num_shards(); ++s)
    ns[static_cast<std::size_t>(s)] = static_cast<double>(registry.shard_ns(s));
  return ns;
}

// Measured-cost load balancing (docs/lts.md): on a clustered-LTS run,
// equal-cell shards are no longer equal-work shards — a cluster-k cell
// runs 2^(K-1-k) substeps per macro step. This section builds the same
// stiff-layer LOH1 workload twice, split equal-cell vs weighted by the
// substep counts (the engine's lts=on default), and reports the measured
// per-shard time imbalance (max/mean) for each split.
void lts_balance_section(int order, int threads) {
  const auto scenario = find_scenario("loh1");
  SimulationConfig config = parse_simulation_args(
      {"scenario=loh1", "order=" + std::to_string(order), "cells=8x8x8",
       "lts=on", "scenario.layer_cp=26", "scenario.layer_cs=15"});
  config.pde = scenario->default_pde();
  const auto pde = find_pde(config.pde);
  const InitialCondition init = scenario->initial_condition(pde, config);
  const LtsClustering clustering = compute_lts_clusters(
      config.grid, *pde->runtime(), init, order, config.family, 0);
  const std::vector<double> weights = BalanceTable().cell_weights(
      pde->name(), order, clustering.cluster, clustering.num_clusters);

  const Isa isa = host_best_isa();
  const auto make_shard =
      [&](const Grid& grid) -> std::unique_ptr<SolverBase> {
    return std::make_unique<AderDgSolver>(
        pde->runtime(),
        cached_stp_kernel(*pde, config.variant, order, isa, config.family),
        grid, config.family);
  };

  // Split along z: the stiff (fast, 4x-substep) layer sits in the low-z
  // planes, so the equal-cell split hands one shard nearly all the work.
  const std::array<int, 3> shard_block{1, 1, 4};
  std::printf("# LTS measured-cost balancing — loh1 stiff layer "
              "(layer_cp=26), order=%d cells=8x8x8, %d clusters, "
              "shards=1x1x4, threads=%d\n",
              order, clustering.num_clusters, threads);
  std::printf("%10s %22s %22s %10s\n", "split", "cells/shard",
              "shard ms", "max/mean");

  for (const bool weighted : {false, true}) {
    Partition partition =
        weighted ? Partition(config.grid, shard_block, weights)
                 : Partition(config.grid, shard_block);
    std::vector<int> cells_of(static_cast<std::size_t>(partition.num_shards()));
    for (int s = 0; s < partition.num_shards(); ++s)
      cells_of[static_cast<std::size_t>(s)] =
          partition.subdomain(s).grid.num_cells();

    ShardedSolver solver(std::move(partition), make_shard);
    solver.set_num_threads(threads);
    solver.set_initial_condition(init);
    solver.enable_lts(clustering.cluster, clustering.num_clusters);
    const std::vector<double> ns = measure_shard_ns(solver, 8);

    double sum = 0.0, peak = 0.0;
    std::string cells_col, ms_col;
    for (std::size_t s = 0; s < ns.size(); ++s) {
      sum += ns[s];
      peak = std::max(peak, ns[s]);
      char item[32];
      std::snprintf(item, sizeof(item), "%s%d", s ? "/" : "", cells_of[s]);
      cells_col += item;
      std::snprintf(item, sizeof(item), "%s%.0f", s ? "/" : "", ns[s] / 1e6);
      ms_col += item;
    }
    const double imbalance = peak / (sum / static_cast<double>(ns.size()));
    std::printf("%10s %22s %22s %9.2fx\n",
                weighted ? "weighted" : "equal-cell", cells_col.c_str(),
                ms_col.c_str(), imbalance);
  }
  std::printf("# max/mean 1.00x is perfect balance; the weighted split is "
              "what lts=on uses (balance= refines it with measured costs)\n");
}

// Over-decomposed rank maps: shards_per_rank>1 groups several shards onto
// each MPI rank (Partition::assign_ranks) — contiguous in shard order, so
// face-heavy neighbours stay co-resident and exchange zero-copy, and
// optionally cost-weighted so a ragged split still balances the ranks.
// This prints the map the mpi backend would use for a ragged 5-shard
// split on 2 ranks, count-split vs cell-weighted.
void rank_map_section() {
  const SimulationConfig config =
      parse_simulation_args({"scenario=planewave", "cells=8x8x9"});
  const std::array<int, 3> shard_block{1, 1, 5};
  std::printf("# shard->rank maps — 1x1x5 shards (ragged z split of "
              "8x8x9 cells) grouped onto 2 ranks\n");
  for (const bool weighted : {false, true}) {
    Partition partition(config.grid, shard_block);
    std::vector<double> cost;
    if (weighted) {
      cost.resize(static_cast<std::size_t>(partition.num_shards()));
      for (int s = 0; s < partition.num_shards(); ++s)
        cost[static_cast<std::size_t>(s)] =
            partition.subdomain(s).grid.num_cells();
    }
    partition.assign_ranks(2, cost);
    std::printf("#   %13s:", weighted ? "cell-weighted" : "count-split");
    for (int r = 0; r < partition.num_ranks(); ++r) {
      const auto& group = partition.shards_of_rank(r);
      int cells = 0;
      std::string ids;
      for (std::size_t i = 0; i < group.size(); ++i) {
        char item[16];
        std::snprintf(item, sizeof(item), "%s%d", i ? "," : "", group[i]);
        ids += item;
        cells += partition.subdomain(group[i]).grid.num_cells();
      }
      std::printf(" rank%d={%s} %d cells", r, ids.c_str(), cells);
    }
    std::printf("\n");
  }
  std::printf("# (the weighted grouping is what backend=mpi uses; "
              "co-resident shards exchange zero-copy in-process)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int max_shards = argc > 1 ? std::atoi(argv[1]) : 4;
  const int order = argc > 2 ? std::atoi(argv[2]) : 5;
  const int cells = argc > 3 ? std::atoi(argv[3]) : 6;
  const int threads = argc > 4 ? std::atoi(argv[4]) : hardware_threads();

  // Calibrate the step count so the monolithic run takes ~1 s.
  Simulation probe = make_sim(1, threads, order, cells);
  const double probe_seconds = time_fixed_steps(probe, 2) / 2.0;
  const int steps =
      std::max(4, static_cast<int>(1.0 / std::max(probe_seconds, 1e-6)));

  // Evolved DOFs of the whole domain (identical for every decomposition).
  const double dofs =
      static_cast<double>(probe.solver().grid().num_cells()) * order * order *
      order * probe.solver().evolved_quantities();

  std::printf("# shard scaling — %s\n", probe.summary().c_str());
  std::printf("# timed steps: %d, global evolved DOFs: %.0f\n", steps, dofs);
  std::printf("%8s %10s %12s %10s %12s %12s %14s %14s %12s %9s\n", "shards",
              "topology", "seconds", "steps/s", "MDOF/s", "MDOF/s/shard",
              "halo KiB/step", "copied KiB", "halo MiB/s", "vs 1shard");

  std::vector<int> counts;
  for (int s = 1; s <= max_shards; s *= 2) counts.push_back(s);
  if (counts.back() != max_shards) counts.push_back(max_shards);

  double serial_steps_per_s = 0.0;
  for (int shards : counts) {
    Simulation sim = make_sim(shards, threads, order, cells);
    const double seconds = time_fixed_steps(sim, steps);
    const double steps_per_s = steps / seconds;
    if (shards == 1) serial_steps_per_s = steps_per_s;

    const auto& grid = sim.shard_grid();
    char topology[32];
    std::snprintf(topology, sizeof(topology), "%dx%dx%d", grid[0], grid[1],
                  grid[2]);
    const int effective = sim.solver().num_shards();
    double halo_kib = 0.0, copied_kib = 0.0;
    if (const auto* composite =
            dynamic_cast<const ShardedSolver*>(&sim.solver())) {
      // ADER exchanges qavg once per step. "halo" is the logical payload,
      // "copied" the bytes actually memcpy'd — equal since the zero-copy
      // in-process swap (it used to be 3x: pack + swap + unpack).
      const ExchangeBackend& exchange = composite->exchange_backend();
      halo_kib =
          static_cast<double>(exchange.payload_bytes_per_exchange()) / 1024.0;
      copied_kib =
          static_cast<double>(exchange.copied_bytes_per_exchange()) / 1024.0;
    }
    // Sustained halo payload rate: logical bytes crossing shard faces per
    // wall second at this decomposition's measured step rate.
    const double halo_mib_s = halo_kib * steps_per_s / 1024.0;
    std::printf(
        "%8d %10s %12.4f %10.2f %12.2f %12.2f %14.1f %14.1f %12.2f %8.2fx\n",
        shards, topology, seconds, steps_per_s, dofs * steps_per_s / 1e6,
        dofs * steps_per_s / 1e6 / effective, halo_kib, copied_kib, halo_mib_s,
        steps_per_s / serial_steps_per_s);
  }
  std::printf("# vs 1shard < 1 is the decomposition + halo overhead; "
              "fields stay bitwise-identical at every shard count\n");

  std::printf("\n");
  rank_map_section();

  std::printf("\n");
  lts_balance_section(order, threads);
  return 0;
}
