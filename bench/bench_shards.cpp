// Shard-scaling bench: the planewave workload stepped under growing domain
// decompositions.
//
// Measures wall clock per ADER-DG step through the Simulation façade with
// shards=N — exactly what an exastp_run user gets — and reports steps/s
// plus aggregate and per-shard degrees-of-freedom throughput. Shards step
// sequentially inside one process (the decomposition is the MPI seam, not
// an extra parallel layer), so the interesting numbers are the overhead
// columns: how much the pack/swap/unpack halo traffic and the per-shard
// traversal split cost against the monolithic run at the same thread
// count (CI's bench-smoke job archives this output per commit).
//
//   bench/bench_shards [max_shards] [order] [cells_per_dim] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exastp/common/parallel.h"
#include "exastp/engine/simulation.h"
#include "exastp/solver/sharded_solver.h"

using namespace exastp;
using exastp::bench::time_fixed_steps;

namespace {

Simulation make_sim(int shards, int threads, int order, int cells) {
  return Simulation::from_args(
      {"scenario=planewave", "stepper=ader", "variant=aosoa_splitck",
       "order=" + std::to_string(order), "cells=" + std::to_string(cells),
       "threads=" + std::to_string(threads),
       "shards=" + std::to_string(shards)});
}

}  // namespace

int main(int argc, char** argv) {
  const int max_shards = argc > 1 ? std::atoi(argv[1]) : 4;
  const int order = argc > 2 ? std::atoi(argv[2]) : 5;
  const int cells = argc > 3 ? std::atoi(argv[3]) : 6;
  const int threads = argc > 4 ? std::atoi(argv[4]) : hardware_threads();

  // Calibrate the step count so the monolithic run takes ~1 s.
  Simulation probe = make_sim(1, threads, order, cells);
  const double probe_seconds = time_fixed_steps(probe, 2) / 2.0;
  const int steps =
      std::max(4, static_cast<int>(1.0 / std::max(probe_seconds, 1e-6)));

  // Evolved DOFs of the whole domain (identical for every decomposition).
  const double dofs =
      static_cast<double>(probe.solver().grid().num_cells()) * order * order *
      order * probe.solver().evolved_quantities();

  std::printf("# shard scaling — %s\n", probe.summary().c_str());
  std::printf("# timed steps: %d, global evolved DOFs: %.0f\n", steps, dofs);
  std::printf("%8s %10s %12s %10s %12s %12s %14s %14s %9s\n", "shards",
              "topology", "seconds", "steps/s", "MDOF/s", "MDOF/s/shard",
              "halo KiB/step", "copied KiB", "vs 1shard");

  std::vector<int> counts;
  for (int s = 1; s <= max_shards; s *= 2) counts.push_back(s);
  if (counts.back() != max_shards) counts.push_back(max_shards);

  double serial_steps_per_s = 0.0;
  for (int shards : counts) {
    Simulation sim = make_sim(shards, threads, order, cells);
    const double seconds = time_fixed_steps(sim, steps);
    const double steps_per_s = steps / seconds;
    if (shards == 1) serial_steps_per_s = steps_per_s;

    const auto& grid = sim.shard_grid();
    char topology[32];
    std::snprintf(topology, sizeof(topology), "%dx%dx%d", grid[0], grid[1],
                  grid[2]);
    const int effective = sim.solver().num_shards();
    double halo_kib = 0.0, copied_kib = 0.0;
    if (const auto* composite =
            dynamic_cast<const ShardedSolver*>(&sim.solver())) {
      // ADER exchanges qavg once per step. "halo" is the logical payload,
      // "copied" the bytes actually memcpy'd — equal since the zero-copy
      // in-process swap (it used to be 3x: pack + swap + unpack).
      const ExchangeBackend& exchange = composite->exchange_backend();
      halo_kib =
          static_cast<double>(exchange.payload_bytes_per_exchange()) / 1024.0;
      copied_kib =
          static_cast<double>(exchange.copied_bytes_per_exchange()) / 1024.0;
    }
    std::printf("%8d %10s %12.4f %10.2f %12.2f %12.2f %14.1f %14.1f %8.2fx\n",
                shards, topology, seconds, steps_per_s,
                dofs * steps_per_s / 1e6,
                dofs * steps_per_s / 1e6 / effective, halo_kib, copied_kib,
                steps_per_s / serial_steps_per_s);
  }
  std::printf("# vs 1shard < 1 is the decomposition + halo overhead; "
              "fields stay bitwise-identical at every shard count\n");
  return 0;
}
