// Reproduces paper Fig. 6: LoG vs SplitCK (both AVX-512), orders 4..11.
//
// Expected shape (paper): SplitCK's memory stalls start below LoG's and
// keep shrinking relative to it as the order grows, while LoG's stay >=40%
// and even increase after order 9; SplitCK's performance keeps growing with
// order instead of plateauing.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

int main() {
  std::printf("measured peak (best ISA): %.1f GFlop/s\n",
              available_peak_gflops());

  ReportTable table({"order", "log_pct", "splitck_pct", "log_stall",
                     "splitck_stall", "log_ws_KiB", "splitck_ws_KiB",
                     "splitck_speedup"});
  std::vector<double> orders, stall_log, stall_sp;
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    Measurement log = measure_stp(StpVariant::kLog, order, Isa::kAvx512);
    Measurement sp = measure_stp(StpVariant::kSplitCk, order, Isa::kAvx512);
    orders.push_back(order);
    stall_log.push_back(log.stall_pct);
    stall_sp.push_back(sp.stall_pct);
    table.add_row({std::to_string(order),
                   ReportTable::num(log.pct_peak),
                   ReportTable::num(sp.pct_peak),
                   ReportTable::num(log.stall_pct, 1),
                   ReportTable::num(sp.stall_pct, 1),
                   std::to_string(log.workspace_bytes / 1024),
                   std::to_string(sp.workspace_bytes / 1024),
                   ReportTable::num(sp.gflops / log.gflops, 2)});
  }
  table.print("Fig. 6 — LoG vs SplitCK (AVX-512)");
  table.write_csv("bench_fig06.csv");
  AsciiChart chart("simulated memory-stall % vs order");
  chart.add_series("log", orders, stall_log);
  chart.add_series("splitck", orders, stall_sp);
  chart.print("Fig. 6 (bottom): memory stalls");
  std::printf("\nwrote bench_fig06.csv\n");
  return 0;
}
