// Kernel-level DOF throughput ledger: fp64 vs fp32 storage on the two
// production SplitCK-family variants, written as BENCH_kernels.json.
//
// The committed copy at the repo root records this machine's before/after
// numbers for the mixed-precision + fused-GEMM work (see docs/precision.md
// for the measured table and the acceptance bar: fp32 aggregate DOF/s at
// least 1.4x fp64 on at least one variant). CI re-runs the bench and
// uploads the fresh JSON from the bench-smoke job; the committed file is a
// reference point, not a gate the build compares against.
//
// Workload: the paper's benchmark PDE (curvilinear elastic, m = 21) at the
// memory-bound upper orders, host-best ISA, mesh-traversal cell rotation —
// identical harness to the figure benches (bench_common.h), so DOF/s here
// and %-of-peak there describe the same runs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

namespace {

struct Row {
  StpVariant variant;
  int order;
  Precision precision;
  double dof_per_s;
  double gflops;
  double us_per_call;
};

double dof_per_s(int order, const Measurement& m) {
  const double dof = static_cast<double>(order) * order * order *
                     CurvilinearElasticPde::kQuants;
  return dof / m.seconds_per_call;
}

}  // namespace

int main() {
  const Isa isa = host_best_isa();
  const std::vector<StpVariant> variants = {StpVariant::kSplitCk,
                                            StpVariant::kAosoaSplitCk};
  const std::vector<int> orders = {6, 8, 10};

  std::vector<Row> rows;
  ReportTable table({"variant", "order", "precision", "MDOF_per_s", "gflops",
                     "us_per_call"});
  for (StpVariant variant : variants)
    for (int order : orders)
      for (Precision precision : {Precision::kF64, Precision::kF32}) {
        const Measurement m = measure_stp(variant, order, isa,
                                          /*min_seconds=*/0.2,
                                          /*mesh_cells=*/8, precision);
        const Row row{variant, order, precision, dof_per_s(order, m),
                      m.gflops, m.seconds_per_call * 1e6};
        rows.push_back(row);
        table.add_row({variant_name(variant), std::to_string(order),
                       precision_name(precision),
                       ReportTable::num(row.dof_per_s / 1e6, 2),
                       ReportTable::num(row.gflops, 2),
                       ReportTable::num(row.us_per_call, 1)});
      }
  table.print("Kernel DOF throughput — fp64 vs fp32 storage");

  std::FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_kernels.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"bench_kernels\",\n"
               "  \"pde\": \"%s\",\n"
               "  \"quants\": %d,\n"
               "  \"isa\": \"%s\",\n"
               "  \"rows\": [\n",
               CurvilinearElasticPde::kName, CurvilinearElasticPde::kQuants,
               isa_name(isa).c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"variant\": \"%s\", \"order\": %d, \"precision\": "
                 "\"%s\", \"dof_per_s\": %.6g, \"gflops\": %.6g, "
                 "\"us_per_call\": %.6g}%s\n",
                 variant_name(r.variant).c_str(), r.order,
                 precision_name(r.precision).c_str(), r.dof_per_s, r.gflops,
                 r.us_per_call, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"aggregate\": [\n");

  // Aggregate DOF/s per (variant, precision): total DOF pushed across the
  // order sweep divided by total kernel time — the number the acceptance
  // bar compares (fp32 >= 1.4x fp64 on at least one variant).
  bool bar_met = false;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    double dof[2] = {0.0, 0.0}, sec[2] = {0.0, 0.0};
    for (const Row& r : rows) {
      if (r.variant != variants[v]) continue;
      const int p = r.precision == Precision::kF32 ? 1 : 0;
      // One call's DOF and seconds per config: the ratio of sums weights
      // each order by its actual cost instead of averaging ratios.
      dof[p] += r.dof_per_s * (r.us_per_call * 1e-6);
      sec[p] += r.us_per_call * 1e-6;
    }
    const double f64 = dof[0] / sec[0], f32 = dof[1] / sec[1];
    const double speedup = f32 / f64;
    bar_met = bar_met || speedup >= 1.4;
    std::fprintf(json,
                 "    {\"variant\": \"%s\", \"fp64_dof_per_s\": %.6g, "
                 "\"fp32_dof_per_s\": %.6g, \"fp32_speedup\": %.4g}%s\n",
                 variant_name(variants[v]).c_str(), f64, f32, speedup,
                 v + 1 < variants.size() ? "," : "");
    std::printf("%s aggregate: fp64 %.2f MDOF/s, fp32 %.2f MDOF/s "
                "(%.2fx)\n",
                variant_name(variants[v]).c_str(), f64 / 1e6, f32 / 1e6,
                speedup);
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_kernels.json (fp32 >= 1.4x bar %s)\n",
              bar_met ? "met" : "NOT met");
  return 0;
}
