// Clustered local-time-stepping bench: global vs LTS wall clock on a
// stiff-layer LOH1 workload (docs/lts.md).
//
// The workload puts a high-velocity layer (scenario.layer_cp/cs overrides,
// ~4.3x the halfspace speed) over the stock halfspace, so the global
// stable dt is dictated by a thin slab while most of the mesh could step
// 4x coarser. Clustered LTS bins the mesh into three rate clusters and
// the bench times the identical physical window (same t_end, same cfl)
// under both schedules through the Simulation façade — exactly what an
// exastp_run user gets, clustering setup excluded from the timed span.
// Reports per-cluster cell/substep tables, the cell-substep reduction
// (the algorithmic bound on the speedup) and the measured wall-clock
// speedup, and writes the JSON record committed as BENCH_lts.json (CI's
// bench-smoke job archives a fresh run per commit).
//
//   bench/bench_lts [order] [cells_per_dim] [threads] [json_path]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exastp/common/parallel.h"
#include "exastp/engine/simulation.h"

using namespace exastp;

namespace {

Simulation make_sim(bool lts, int order, int cells, int threads,
                    double t_end) {
  std::vector<std::string> args{
      "scenario=loh1",
      "order=" + std::to_string(order),
      "cells=" + std::to_string(cells),
      "threads=" + std::to_string(threads),
      "t_end=" + std::to_string(t_end),
      // Stiff thin layer: 26/15 km/s against the stock 6/3.464 halfspace
      // (speed contrast 4.33 -> three rate clusters). Synthetic on
      // purpose — the bench isolates the schedule, not the geology.
      "scenario.layer_cp=26",
      "scenario.layer_cs=15",
  };
  if (lts) args.push_back("lts=on");
  return Simulation::from_args(args);
}

double wall_seconds(Simulation& sim, int* steps) {
  const auto t0 = std::chrono::steady_clock::now();
  *steps = sim.run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int order = argc > 1 ? std::atoi(argv[1]) : 6;
  const int cells = argc > 2 ? std::atoi(argv[2]) : 8;
  const int threads = argc > 3 ? std::atoi(argv[3]) : hardware_threads();
  const std::string json_path = argc > 4 ? argv[4] : "BENCH_lts.json";

  // Size the physical window to ~24 global steps from a probe's stable dt
  // (materials are time-invariant, so the probe dt is the run dt).
  Simulation probe = make_sim(false, order, cells, threads, 1.0);
  const double dt = probe.solver().stable_dt();
  const double t_end = 24.5 * dt;

  Simulation global = make_sim(false, order, cells, threads, t_end);
  std::printf("# clustered LTS — %s\n", global.summary().c_str());
  int global_steps = 0;
  const double global_s = wall_seconds(global, &global_steps);

  Simulation lts = make_sim(true, order, cells, threads, t_end);
  int lts_steps = 0;
  const double lts_s = wall_seconds(lts, &lts_steps);

  const auto stats = lts.solver().lts_cluster_stats();
  long long lts_cell_substeps = 0;
  std::printf("%8s %8s %14s\n", "cluster", "cells", "cell-substeps");
  for (std::size_t k = 0; k < stats.size(); ++k) {
    std::printf("%8zu %8d %14lld\n", k, stats[k].cells,
                stats[k].cell_substeps);
    lts_cell_substeps += stats[k].cell_substeps;
  }
  const long long global_cell_substeps =
      static_cast<long long>(global.solver().grid().num_cells()) *
      global_steps;
  const double substep_reduction =
      static_cast<double>(global_cell_substeps) /
      static_cast<double>(lts_cell_substeps);
  const double speedup = global_s / lts_s;

  std::printf("%8s %8s %12s %14s\n", "mode", "steps", "seconds",
              "cell-substeps");
  std::printf("%8s %8d %12.4f %14lld\n", "global", global_steps, global_s,
              global_cell_substeps);
  std::printf("%8s %8d %12.4f %14lld\n", "lts", lts_steps, lts_s,
              lts_cell_substeps);
  std::printf("# substep reduction %.2fx (algorithmic bound), wall-clock "
              "speedup %.2fx\n",
              substep_reduction, speedup);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"lts\",\n");
  std::fprintf(json,
               "  \"workload\": \"loh1 stiff layer (layer_cp=26) "
               "aosoa_splitck order=%d cells=%d^3\",\n",
               order, cells);
  std::fprintf(json, "  \"threads\": %d,\n", threads);
  std::fprintf(json, "  \"t_end\": %.6g,\n", t_end);
  std::fprintf(json, "  \"clusters\": [\n");
  for (std::size_t k = 0; k < stats.size(); ++k)
    std::fprintf(json,
                 "    {\"cluster\": %zu, \"cells\": %d, "
                 "\"cell_substeps\": %lld}%s\n",
                 k, stats[k].cells, stats[k].cell_substeps,
                 k + 1 < stats.size() ? "," : "");
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"runs\": [\n");
  std::fprintf(json,
               "    {\"mode\": \"global\", \"steps\": %d, \"seconds\": %.6g, "
               "\"cell_substeps\": %lld},\n",
               global_steps, global_s, global_cell_substeps);
  std::fprintf(json,
               "    {\"mode\": \"lts\", \"steps\": %d, \"seconds\": %.6g, "
               "\"cell_substeps\": %lld}\n",
               lts_steps, lts_s, lts_cell_substeps);
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"substep_reduction\": %.4g,\n", substep_reduction);
  std::fprintf(json, "  \"speedup\": %.4g\n", speedup);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s (speedup >= 1.5x bar %s)\n", json_path.c_str(),
              speedup >= 1.5 ? "met" : "NOT met");
  return 0;
}
