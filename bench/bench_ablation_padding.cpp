// Ablation E6 (Sec. V-A): the AoSoA x-line zero-padding overhead across
// orders under AVX-512. Order 8 is the sweetspot (no padding), order 9 the
// worst case (9 -> 16 lanes): the padded FLOP share and the achieved
// useful performance make the effect visible.
#include <cstdio>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

int main() {
  ReportTable table({"order", "n_pad", "padding_overhead_pct",
                     "gflops_total", "gflops_useful", "pct_peak"});
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    AosoaLayout layout(order, CurvilinearElasticPde::kQuants, Isa::kAvx512);
    Measurement m =
        measure_stp(StpVariant::kAosoaSplitCk, order, Isa::kAvx512);
    // Padded lanes execute arithmetic that contributes nothing to the
    // solution: useful GFlops discount them.
    const double useful_fraction = 1.0 - layout.padding_overhead();
    table.add_row({std::to_string(order), std::to_string(layout.n_pad),
                   ReportTable::num(100.0 * layout.padding_overhead(), 1),
                   ReportTable::num(m.gflops),
                   ReportTable::num(m.gflops * useful_fraction),
                   ReportTable::num(m.pct_peak)});
  }
  table.print("Sec. V-A ablation — AoSoA x-line padding overhead (AVX-512)");
  table.write_csv("bench_ablation_padding.csv");
  std::printf("\nexpected: 0%% overhead at order 8 (sweetspot), 43.8%% at "
              "order 9 (worst case)\nwrote bench_ablation_padding.csv\n");
  return 0;
}
