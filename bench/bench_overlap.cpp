// Overlap bench: how much of the halo-exchange cost the split-phase
// protocol hides behind interior compute.
//
// Drives the per-shard solvers by hand through both schedules on the
// planewave ADER workload —
//
//   serialized   exchange (post+wait), then each phase whole (the PR-4
//                schedule: the halo cost sits in front of the sweep);
//   overlapped   post, interior sweeps, wait, boundary sweeps (the
//                schedule ShardedSolver and every MPI rank run).
//
// and reports, per shard count: both wall clocks, the measured exchange
// time, the interior/boundary cell split, and the hidden fraction
// (serialized - overlapped) / exchange. In-process the "transfer" is a
// synchronous memcpy, so post() cannot truly run in the background and the
// hidden fraction hovers near zero — the column to watch on one machine is
// the exchange share of the step, which bounds what an MPI rank hides
// behind its interior sweep (the interior time cap). CI's bench-smoke job
// archives this output per commit.
//
//   bench/bench_overlap [max_shards] [order] [cells_per_dim] [steps]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exastp/common/simd.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/halo_exchange.h"

using namespace exastp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::unique_ptr<SolverBase>> make_shards(
    const Partition& partition, const SimulationConfig& config,
    const std::shared_ptr<const KernelFactory>& pde) {
  const InitialCondition init =
      find_scenario(config.scenario)->initial_condition(pde, config);
  std::vector<std::unique_ptr<SolverBase>> shards;
  for (int s = 0; s < partition.num_shards(); ++s) {
    shards.push_back(std::make_unique<AderDgSolver>(
        pde->runtime(),
        pde->make_kernel(StpVariant::kAosoaSplitCk, config.order,
                         host_best_isa()),
        partition.subdomain(s).grid));
    shards.back()->set_initial_condition(init);
  }
  return shards;
}

std::vector<double*> halo_fields(
    std::vector<std::unique_ptr<SolverBase>>& shards, int phase) {
  std::vector<double*> fields(shards.size(), nullptr);
  for (std::size_t s = 0; s < shards.size(); ++s)
    fields[s] = shards[s]->step_phase_halo(phase);
  return fields;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_shards = argc > 1 ? std::atoi(argv[1]) : 4;
  const int order = argc > 2 ? std::atoi(argv[2]) : 5;
  const int cells = argc > 3 ? std::atoi(argv[3]) : 6;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 20;

  SimulationConfig config;
  config.scenario = "planewave";
  apply_scenario_defaults(config);
  config.order = order;
  config.grid.cells = {cells, cells, cells};
  const std::shared_ptr<const KernelFactory> pde = find_pde("acoustic");

  std::printf("# overlap bench — planewave/acoustic ader order=%d cells=%d^3"
              " steps=%d\n",
              order, cells, steps);
  std::printf("%8s %10s %10s %12s %12s %12s %10s %10s\n", "shards",
              "interior", "boundary", "serial s", "overlap s", "exchange s",
              "xchg/step", "hidden");

  std::vector<int> counts;
  for (int s = 2; s <= max_shards; s *= 2) counts.push_back(s);
  if (counts.empty() || counts.back() != max_shards)
    counts.push_back(max_shards);

  for (int shards_total : counts) {
    if (shards_total < 2) continue;
    const std::array<int, 3> grid =
        Partition::factor(shards_total, config.grid.cells);
    Partition partition(config.grid, grid);
    if (partition.num_shards() < 2) continue;

    auto serialized = make_shards(partition, config, pde);
    auto overlapped = make_shards(partition, config, pde);
    InProcessExchange exchange_a(partition, serialized[0]->layout().size());
    InProcessExchange exchange_b(partition, serialized[0]->layout().size());

    double dt = serialized[0]->stable_dt();
    for (const auto& shard : serialized)
      dt = std::min(dt, shard->stable_dt());
    const int phases = serialized[0]->num_step_phases();

    long interior_cells = 0, boundary_cells = 0;
    for (int s = 0; s < partition.num_shards(); ++s) {
      interior_cells +=
          static_cast<long>(partition.subdomain(s).cells.interior.size());
      boundary_cells +=
          static_cast<long>(partition.subdomain(s).cells.boundary.size());
    }

    // Serialized: the exchange completes before any phase compute starts.
    double exchange_seconds = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (int step = 0; step < steps; ++step) {
      for (int phase = 0; phase < phases; ++phase) {
        auto fields = halo_fields(serialized, phase);
        if (fields[0] != nullptr) {
          const auto xchg_start = std::chrono::steady_clock::now();
          exchange_a.exchange(fields);
          exchange_seconds += seconds_since(xchg_start);
        }
        for (auto& shard : serialized) shard->step_phase(phase, dt);
      }
    }
    const double serial_seconds = seconds_since(start);

    // Overlapped: interior sweeps sit between post and wait.
    start = std::chrono::steady_clock::now();
    for (int step = 0; step < steps; ++step) {
      for (int phase = 0; phase < phases; ++phase) {
        auto fields = halo_fields(overlapped, phase);
        if (fields[0] != nullptr) exchange_b.post(fields);
        for (auto& shard : overlapped)
          shard->step_phase_interior(phase, dt);
        if (fields[0] != nullptr) exchange_b.wait();
        for (auto& shard : overlapped)
          shard->step_phase_boundary(phase, dt);
      }
    }
    const double overlap_seconds = seconds_since(start);

    const double hidden =
        exchange_seconds > 0.0
            ? (serial_seconds - overlap_seconds) / exchange_seconds
            : 0.0;
    std::printf("%8d %10ld %10ld %12.4f %12.4f %12.4f %9.1f%% %9.1f%%\n",
                partition.num_shards(), interior_cells, boundary_cells,
                serial_seconds, overlap_seconds, exchange_seconds,
                100.0 * exchange_seconds / serial_seconds, 100.0 * hidden);
  }
  std::printf("# xchg/step bounds what an MPI rank hides behind its interior"
              " sweep; fields stay bitwise-identical on both schedules\n");
  return 0;
}
