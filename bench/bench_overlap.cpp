// Overlap bench: how much of the halo-exchange cost the split-phase
// protocol hides behind interior compute.
//
// Drives the per-shard solvers by hand through both schedules on the
// planewave ADER workload —
//
//   serialized   exchange (post+wait), then each phase whole (the PR-4
//                schedule: the halo cost sits in front of the sweep);
//   overlapped   post, interior sweeps, wait, boundary sweeps (the
//                schedule ShardedSolver and every MPI rank run).
//
// and reports, per shard count: both wall clocks, the measured exchange
// time, the interior/boundary cell split, and the hidden fraction
// (serialized - overlapped) / exchange. In-process the "transfer" is a
// synchronous memcpy, so post() cannot truly run in the background and the
// hidden fraction hovers near zero — the column to watch on one machine is
// the exchange share of the step, which bounds what an MPI rank hides
// behind its interior sweep (the interior time cap). CI's bench-smoke job
// archives this output per commit.
//
//   bench/bench_overlap [max_shards] [order] [cells_per_dim] [steps]
//
// --oversub measures the over-decomposition win instead: the skewed
// stiff-layer LOH1 LTS workload split 1x1x8, rank-mapped onto 2 virtual
// ranks (4 shards per rank), with the rank-cut faces given a simulated
// wire latency calibrated from a latency-free probe. It times schedule=
// lockstep against the dependency scheduler over identical solvers and
// backends, asserts the final fields are bitwise-identical, and writes a
// JSON record (committed as BENCH_oversub.json; CI archives it).
//
//   bench/bench_overlap --oversub [out.json] [order] [steps] [threads]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exastp/common/simd.h"
#include "exastp/engine/kernel_cache.h"
#include "exastp/engine/lts_clusters.h"
#include "exastp/engine/pde_registry.h"
#include "exastp/engine/scenario_registry.h"
#include "exastp/engine/simulation_config.h"
#include "exastp/mesh/balance_table.h"
#include "exastp/mesh/partition.h"
#include "exastp/solver/ader_dg_solver.h"
#include "exastp/solver/halo_exchange.h"
#include "exastp/solver/sharded_solver.h"

using namespace exastp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::unique_ptr<SolverBase>> make_shards(
    const Partition& partition, const SimulationConfig& config,
    const std::shared_ptr<const KernelFactory>& pde) {
  const InitialCondition init =
      find_scenario(config.scenario)->initial_condition(pde, config);
  std::vector<std::unique_ptr<SolverBase>> shards;
  for (int s = 0; s < partition.num_shards(); ++s) {
    shards.push_back(std::make_unique<AderDgSolver>(
        pde->runtime(),
        pde->make_kernel(StpVariant::kAosoaSplitCk, config.order,
                         host_best_isa()),
        partition.subdomain(s).grid));
    shards.back()->set_initial_condition(init);
  }
  return shards;
}

std::vector<double*> halo_fields(
    std::vector<std::unique_ptr<SolverBase>>& shards, int phase) {
  std::vector<double*> fields(shards.size(), nullptr);
  for (std::size_t s = 0; s < shards.size(); ++s)
    fields[s] = shards[s]->step_phase_halo(phase);
  return fields;
}

// ---- --oversub: lockstep vs the dependency scheduler ---------------------

std::uint64_t fnv1a(std::uint64_t h, const unsigned char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// The over-decomposed stiff-layer solver: LOH1 LTS workload split 1x1x8,
/// shards weighted by the LTS substep costs, rank-mapped onto 2 virtual
/// ranks (4 shards per rank, cost-weighted grouping). `latency_seconds`
/// swaps in an InProcessExchange that delays the rank-cut link deliveries
/// — the same backend for both schedules, so the comparison is fair.
std::unique_ptr<ShardedSolver> make_oversub_solver(
    const SimulationConfig& config,
    const std::shared_ptr<const KernelFactory>& pde,
    const InitialCondition& init, const LtsClustering& clustering,
    const std::vector<double>& weights, const std::string& schedule,
    double latency_seconds, int threads) {
  Partition partition(config.grid, {1, 1, 8}, weights);
  std::vector<double> shard_cost(
      static_cast<std::size_t>(partition.num_shards()), 0.0);
  for (int s = 0; s < partition.num_shards(); ++s) {
    const int owned = partition.subdomain(s).grid.num_cells();
    double cost = 0.0;
    for (int local = 0; local < owned; ++local)
      cost += weights.empty()
                  ? 1.0
                  : weights[static_cast<std::size_t>(
                        partition.global_cell(s, local))];
    shard_cost[static_cast<std::size_t>(s)] = cost;
  }
  partition.assign_ranks(2, shard_cost);

  const Isa isa = host_best_isa();
  const auto make_shard =
      [&](const Grid& grid) -> std::unique_ptr<SolverBase> {
    return std::make_unique<AderDgSolver>(
        pde->runtime(),
        cached_stp_kernel(*pde, config.variant, config.order, isa,
                          config.family),
        grid, config.family);
  };
  auto solver = std::make_unique<ShardedSolver>(
      std::move(partition), make_shard, "inprocess", schedule);
  solver->set_num_threads(threads);
  solver->set_initial_condition(init);
  solver->enable_lts(clustering.cluster, clustering.num_clusters);
  if (latency_seconds > 0.0)
    solver->set_exchange_backend(std::make_unique<InProcessExchange>(
        solver->partition(), solver->layout().size(), latency_seconds));
  return solver;
}

struct OversubRun {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

/// Times `steps` fixed-dt steps (one untimed warmup first) and hashes the
/// final field state cell by cell.
OversubRun run_oversub(ShardedSolver& solver, int steps) {
  const double dt = solver.plan_step(solver.stable_dt());
  solver.step(dt);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) solver.step(dt);
  OversubRun out;
  out.seconds = seconds_since(t0);
  const std::size_t bytes = solver.layout().size() * sizeof(double);
  std::uint64_t h = 1469598103934665603ull;
  for (int c = 0; c < solver.grid().num_cells(); ++c)
    h = fnv1a(h, reinterpret_cast<const unsigned char*>(solver.cell_dofs(c)),
              bytes);
  out.checksum = h;
  return out;
}

int oversub_main(int argc, char** argv) {
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_oversub.json";
  const int order = argc > 3 ? std::atoi(argv[3]) : 4;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 6;
  const int threads = argc > 5 ? std::atoi(argv[5]) : 1;

  const auto scenario = find_scenario("loh1");
  SimulationConfig config = parse_simulation_args(
      {"scenario=loh1", "order=" + std::to_string(order), "cells=8x8x16",
       "lts=on", "scenario.layer_cp=26", "scenario.layer_cs=15"});
  config.pde = scenario->default_pde();
  const auto pde = find_pde(config.pde);
  const InitialCondition init = scenario->initial_condition(pde, config);
  const LtsClustering clustering = compute_lts_clusters(
      config.grid, *pde->runtime(), init, order, config.family, 0);
  const std::vector<double> weights = BalanceTable().cell_weights(
      pde->name(), order, clustering.cluster, clustering.num_clusters);

  std::printf(
      "# oversub bench — loh1 stiff layer (layer_cp=26) ader lts=on "
      "order=%d cells=8x8x16 shards=1x1x8 on 2 virtual ranks "
      "(shards_per_rank=4), %d clusters, steps=%d threads=%d\n",
      order, clustering.num_clusters, steps, threads);

  // Calibrate the simulated rank-cut wire latency from a latency-free
  // lockstep probe: one mean exchanging-phase compute time. Lockstep can
  // hide at most one phase's interior sweeps per exchange, so a wire of
  // this scale exposes the barrier; the dependency scheduler fills the
  // stall with other shards' (and later phases') work.
  auto probe = make_oversub_solver(config, pde, init, clustering, weights,
                                   "lockstep", 0.0, threads);
  const int phases = probe->num_step_phases();
  const int exchanging_phases = phases / 2;  // odd LTS phases correct+exchange
  const int probe_steps = std::max(2, steps / 2);
  const double probe_step_s =
      run_oversub(*probe, probe_steps).seconds / probe_steps;
  const double latency_s = probe_step_s / exchanging_phases;
  std::printf("# probe: %.4f s/step over %d phases -> simulated cross-rank "
              "latency %.1f us\n",
              probe_step_s, phases, latency_s * 1e6);

  auto lockstep = make_oversub_solver(config, pde, init, clustering, weights,
                                      "lockstep", latency_s, threads);
  auto deps = make_oversub_solver(config, pde, init, clustering, weights,
                                  "deps", latency_s, threads);
  const OversubRun a = run_oversub(*lockstep, steps);
  const OversubRun b = run_oversub(*deps, steps);

  // Bitwise equivalence of the full final field state, cell by cell.
  bool bitwise = a.checksum == b.checksum;
  const std::size_t bytes = lockstep->layout().size() * sizeof(double);
  for (int c = 0; bitwise && c < lockstep->grid().num_cells(); ++c)
    bitwise =
        std::memcmp(lockstep->cell_dofs(c), deps->cell_dofs(c), bytes) == 0;
  const double speedup = a.seconds / b.seconds;

  std::printf("%12s %12s %10s %10s\n", "lockstep s", "deps s", "speedup",
              "bitwise");
  std::printf("%12.4f %12.4f %9.2fx %10s\n", a.seconds, b.seconds, speedup,
              bitwise ? "yes" : "NO");
  if (!bitwise) {
    std::fprintf(stderr,
                 "oversub: schedules disagree bitwise (lockstep 0x%016llx vs "
                 "deps 0x%016llx)\n",
                 static_cast<unsigned long long>(a.checksum),
                 static_cast<unsigned long long>(b.checksum));
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "oversub: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"oversub\",\n"
      "  \"workload\": \"loh1 stiff layer (scenario.layer_cp=26, "
      "scenario.layer_cs=15), ader lts=on\",\n"
      "  \"order\": %d,\n"
      "  \"cells\": \"8x8x16\",\n"
      "  \"shards\": \"1x1x8\",\n"
      "  \"virtual_ranks\": 2,\n"
      "  \"shards_per_rank\": 4,\n"
      "  \"lts_clusters\": %d,\n"
      "  \"step_phases\": %d,\n"
      "  \"steps\": %d,\n"
      "  \"threads\": %d,\n"
      "  \"simulated_cross_rank_latency_us\": %.1f,\n"
      "  \"lockstep_seconds\": %.4f,\n"
      "  \"deps_seconds\": %.4f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"bitwise_identical\": true,\n"
      "  \"state_checksum\": \"0x%016llx\"\n"
      "}\n",
      order, clustering.num_clusters, phases, steps, threads,
      latency_s * 1e6, a.seconds, b.seconds, speedup,
      static_cast<unsigned long long>(a.checksum));
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--oversub")
    return oversub_main(argc, argv);
  const int max_shards = argc > 1 ? std::atoi(argv[1]) : 4;
  const int order = argc > 2 ? std::atoi(argv[2]) : 5;
  const int cells = argc > 3 ? std::atoi(argv[3]) : 6;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 20;

  SimulationConfig config;
  config.scenario = "planewave";
  apply_scenario_defaults(config);
  config.order = order;
  config.grid.cells = {cells, cells, cells};
  const std::shared_ptr<const KernelFactory> pde = find_pde("acoustic");

  std::printf("# overlap bench — planewave/acoustic ader order=%d cells=%d^3"
              " steps=%d\n",
              order, cells, steps);
  std::printf("%8s %10s %10s %12s %12s %12s %10s %10s\n", "shards",
              "interior", "boundary", "serial s", "overlap s", "exchange s",
              "xchg/step", "hidden");

  std::vector<int> counts;
  for (int s = 2; s <= max_shards; s *= 2) counts.push_back(s);
  if (counts.empty() || counts.back() != max_shards)
    counts.push_back(max_shards);

  for (int shards_total : counts) {
    if (shards_total < 2) continue;
    const std::array<int, 3> grid =
        Partition::factor(shards_total, config.grid.cells);
    Partition partition(config.grid, grid);
    if (partition.num_shards() < 2) continue;

    auto serialized = make_shards(partition, config, pde);
    auto overlapped = make_shards(partition, config, pde);
    InProcessExchange exchange_a(partition, serialized[0]->layout().size());
    InProcessExchange exchange_b(partition, serialized[0]->layout().size());

    double dt = serialized[0]->stable_dt();
    for (const auto& shard : serialized)
      dt = std::min(dt, shard->stable_dt());
    const int phases = serialized[0]->num_step_phases();

    long interior_cells = 0, boundary_cells = 0;
    for (int s = 0; s < partition.num_shards(); ++s) {
      interior_cells +=
          static_cast<long>(partition.subdomain(s).cells.interior.size());
      boundary_cells +=
          static_cast<long>(partition.subdomain(s).cells.boundary.size());
    }

    // Serialized: the exchange completes before any phase compute starts.
    double exchange_seconds = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (int step = 0; step < steps; ++step) {
      for (int phase = 0; phase < phases; ++phase) {
        auto fields = halo_fields(serialized, phase);
        if (fields[0] != nullptr) {
          const auto xchg_start = std::chrono::steady_clock::now();
          exchange_a.exchange(fields);
          exchange_seconds += seconds_since(xchg_start);
        }
        for (auto& shard : serialized) shard->step_phase(phase, dt);
      }
    }
    const double serial_seconds = seconds_since(start);

    // Overlapped: interior sweeps sit between post and wait.
    start = std::chrono::steady_clock::now();
    for (int step = 0; step < steps; ++step) {
      for (int phase = 0; phase < phases; ++phase) {
        auto fields = halo_fields(overlapped, phase);
        if (fields[0] != nullptr) exchange_b.post(fields);
        for (auto& shard : overlapped)
          shard->step_phase_interior(phase, dt);
        if (fields[0] != nullptr) exchange_b.wait();
        for (auto& shard : overlapped)
          shard->step_phase_boundary(phase, dt);
      }
    }
    const double overlap_seconds = seconds_since(start);

    const double hidden =
        exchange_seconds > 0.0
            ? (serial_seconds - overlap_seconds) / exchange_seconds
            : 0.0;
    std::printf("%8d %10ld %10ld %12.4f %12.4f %12.4f %9.1f%% %9.1f%%\n",
                partition.num_shards(), interior_cells, boundary_cells,
                serial_seconds, overlap_seconds, exchange_seconds,
                100.0 * exchange_seconds / serial_seconds, 100.0 * hidden);
  }
  std::printf("# xchg/step bounds what an MPI rank hides behind its interior"
              " sweep; fields stay bitwise-identical on both schedules\n");
  return 0;
}
