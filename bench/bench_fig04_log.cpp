// Reproduces paper Fig. 4: available performance reached and memory-stall
// fraction for the Generic kernel vs the LoG kernel compiled for AVX-512
// and for AVX2 (Haswell code path), orders 4..11, on the curvilinear
// elastic m = 21 benchmark.
//
// Expected shape (paper): generic low and flat (~4% band); both LoG setups
// improve with order but plateau against memory stalls; AVX-512 beats AVX2
// by only ~23-30% instead of the ~2x a compute-bound kernel would show;
// LoG stalls stay >= ~40% and grow again at order 11.
#include <cstdio>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

int main() {
  const double peak = available_peak_gflops();
  std::printf("measured peak (best ISA): %.1f GFlop/s\n", peak);
  std::printf("paper reference: 60.8 GFlop/s per Skylake core\n");

  ReportTable table({"order", "generic_pct", "log_avx512_pct", "log_avx2_pct",
                     "generic_stall", "log_avx512_stall", "log_avx2_stall",
                     "avx512_vs_avx2_speedup"});
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    Measurement generic = measure_stp(StpVariant::kGeneric, order,
                                      Isa::kScalar);
    Measurement log512 = measure_stp(StpVariant::kLog, order, Isa::kAvx512);
    Measurement log256 = measure_stp(StpVariant::kLog, order, Isa::kAvx2);
    table.add_row({std::to_string(order),
                   ReportTable::num(generic.pct_peak),
                   ReportTable::num(log512.pct_peak),
                   ReportTable::num(log256.pct_peak),
                   ReportTable::num(generic.stall_pct, 1),
                   ReportTable::num(log512.stall_pct, 1),
                   ReportTable::num(log256.stall_pct, 1),
                   ReportTable::num(log512.gflops / log256.gflops, 2)});
  }
  table.print("Fig. 4 — Generic vs LoG (AVX-512) vs LoG (AVX2)");
  table.write_csv("bench_fig04.csv");
  std::printf("\nwrote bench_fig04.csv\n");
  return 0;
}
