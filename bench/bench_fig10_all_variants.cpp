// Reproduces paper Fig. 10 (the headline figure): available performance
// reached and memory-stall fraction for all four STP kernel variants at
// orders 4..11.
//
// Expected shape (paper): generic plateaus around ~4%; LoG improves then
// stalls against memory; both SplitCK variants keep growing with order,
// with AoSoA SplitCK best overall — 22.5% of peak at order 11 on the
// paper's machine, a ~6x speedup over generic at the same order.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

int main() {
  const double peak = available_peak_gflops();
  std::printf("measured peak (best ISA): %.1f GFlop/s\n", peak);

  ReportTable table({"order", "generic_pct", "log_pct", "splitck_pct",
                     "aosoa_pct", "generic_stall", "log_stall",
                     "splitck_stall", "aosoa_stall", "aosoa_vs_generic",
                     "splitck_f32_x", "aosoa_f32_x"});
  std::vector<double> orders;
  std::vector<double> perf[4], stall[4];
  double headline_speedup = 0.0;
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    Measurement generic =
        measure_stp(StpVariant::kGeneric, order, Isa::kScalar);
    Measurement log = measure_stp(StpVariant::kLog, order, Isa::kAvx512);
    Measurement sp = measure_stp(StpVariant::kSplitCk, order, Isa::kAvx512);
    Measurement ao =
        measure_stp(StpVariant::kAosoaSplitCk, order, Isa::kAvx512);
    // fp32 storage rows (same FLOP ledger, so the gflops ratio IS the
    // wall-clock speedup per cell update); detailed DOF/s numbers live in
    // bench_kernels / BENCH_kernels.json.
    Measurement sp32 = measure_stp(StpVariant::kSplitCk, order, Isa::kAvx512,
                                   0.15, 8, Precision::kF32);
    Measurement ao32 = measure_stp(StpVariant::kAosoaSplitCk, order,
                                   Isa::kAvx512, 0.15, 8, Precision::kF32);
    const double speedup = ao.gflops / generic.gflops *
                           (static_cast<double>(generic.flops_per_call) /
                            static_cast<double>(ao.flops_per_call));
    if (order == kBenchMaxOrder) headline_speedup = speedup;
    orders.push_back(order);
    const Measurement* ms[4] = {&generic, &log, &sp, &ao};
    for (int v = 0; v < 4; ++v) {
      perf[v].push_back(ms[v]->pct_peak);
      stall[v].push_back(ms[v]->stall_pct);
    }
    table.add_row({std::to_string(order),
                   ReportTable::num(generic.pct_peak),
                   ReportTable::num(log.pct_peak),
                   ReportTable::num(sp.pct_peak),
                   ReportTable::num(ao.pct_peak),
                   ReportTable::num(generic.stall_pct, 1),
                   ReportTable::num(log.stall_pct, 1),
                   ReportTable::num(sp.stall_pct, 1),
                   ReportTable::num(ao.stall_pct, 1),
                   ReportTable::num(speedup, 2),
                   ReportTable::num(sp32.gflops / sp.gflops, 2),
                   ReportTable::num(ao32.gflops / ao.gflops, 2)});
  }
  table.print("Fig. 10 — all four STP variants");
  table.write_csv("bench_fig10.csv");

  const char* names[4] = {"generic", "log", "splitck", "aosoa"};
  AsciiChart perf_chart("% of measured peak vs order");
  AsciiChart stall_chart("simulated memory-stall % vs order");
  for (int v = 0; v < 4; ++v) {
    perf_chart.add_series(names[v], orders, perf[v]);
    stall_chart.add_series(names[v], orders, stall[v]);
  }
  perf_chart.print("Fig. 10 (top): available performance reached");
  stall_chart.print("Fig. 10 (bottom): memory stalls");
  std::printf(
      "\nheadline: AoSoA SplitCK at order %d runs the same cell update "
      "%.1fx faster than Generic (paper: ~6x; paper AoSoA reaches 22.5%% of "
      "peak)\nwrote bench_fig10.csv\n",
      kBenchMaxOrder, headline_speedup);
  return 0;
}
