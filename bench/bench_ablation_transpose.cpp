// Ablation E7 (Sec. V-A/B): data-layout transposition strategies.
//
// The paper evaluated two ways to feed SoA chunks to the user functions:
//   (a) transpose the whole tensor AoS -> AoSoA once per kernel call and
//       back at the end (chosen for linear PDEs),
//   (b) transpose AoS -> SoA and back around *every* user-function call
//       (rejected: effective only for expensive non-linear user functions).
// This bench measures the boundary-transpose cost relative to one AoSoA
// kernel invocation, and the total cost the rejected per-call scheme would
// add (2 transposes x 3 dimensions x 2 user functions x N Taylor orders).
#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace exastp;
using namespace exastp::bench;

namespace {

double time_seconds(const std::function<void()>& fn, int reps) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (int r = 0; r < reps; ++r) fn();
  return std::chrono::duration<double>(clock::now() - t0).count() / reps;
}

}  // namespace

int main() {
  ReportTable table({"order", "aosoa_kernel_ms", "boundary_transpose_ms",
                     "boundary_pct_of_kernel", "rejected_soa_uf_kernel_ms",
                     "rejected_pct_of_aosoa"});
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    const int m = CurvilinearElasticPde::kQuants;
    AosLayout aos(order, m, Isa::kAvx512);
    AosoaLayout aosoa(order, m, Isa::kAvx512);
    AlignedVector q = benchmark_cell(aos, 0);
    AlignedVector hybrid(aosoa.size()), back(aos.size());

    Measurement kernel =
        measure_stp(StpVariant::kAosoaSplitCk, order, Isa::kAvx512,
                    /*min_seconds=*/0.05);

    const int reps = order >= 9 ? 50 : 200;
    // (a) chosen scheme: in-transpose + out-transposes (1x qavg + 3x favg).
    const double boundary = time_seconds(
        [&] {
          aos_to_aosoa(q.data(), aos, hybrid.data(), aosoa);
          for (int i = 0; i < 4; ++i)
            aosoa_to_aos(hybrid.data(), aosoa, back.data(), aos);
        },
        reps);
    // (b) rejected scheme, actually measured (not estimated): SplitCK with
    // AoS->SoA->AoS round trips around every user-function sweep.
    Measurement rejected = measure_stp(StpVariant::kSoaUfSplitCk, order,
                                       Isa::kAvx512, /*min_seconds=*/0.05);
    table.add_row(
        {std::to_string(order),
         ReportTable::num(kernel.seconds_per_call * 1e3, 3),
         ReportTable::num(boundary * 1e3, 3),
         ReportTable::num(100.0 * boundary / kernel.seconds_per_call, 1),
         ReportTable::num(rejected.seconds_per_call * 1e3, 3),
         ReportTable::num(
             100.0 * rejected.seconds_per_call / kernel.seconds_per_call, 1)});
  }
  table.print("Sec. V ablation — boundary AoSoA transpose vs per-call "
              "AoS<->SoA transpose");
  table.write_csv("bench_ablation_transpose.csv");
  std::printf("\nexpected: boundary transposes cost a few %% of the kernel; "
              "the rejected per-call scheme costs a large multiple of "
              "that\nwrote bench_ablation_transpose.csv\n");

  // Extension measurement: the AoSoA-native entry point (whole engine in
  // AoSoA — the paper's future-work variant) vs the transposing wrapper.
  ReportTable native({"order", "wrapper_ms", "native_ms", "saving_pct"});
  for (int order = kBenchMinOrder; order <= kBenchMaxOrder; ++order) {
    AosoaStp<CurvilinearElasticPde> kernel(CurvilinearElasticPde{}, order,
                                           Isa::kAvx512);
    const AosLayout& aos = kernel.layout();
    const AosoaLayout& aosoa = kernel.internal_layout();
    AlignedVector q = benchmark_cell(aos, 0);
    AlignedVector qavg(aos.size()), f0(aos.size()), f1(aos.size()),
        f2(aos.size());
    StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};
    AlignedVector q_a(aosoa.size()), qavg_a(aosoa.size()), g0(aosoa.size()),
        g1(aosoa.size()), g2(aosoa.size());
    aos_to_aosoa(q.data(), aos, q_a.data(), aosoa);
    const std::array<double, 3> inv_dx{8.0, 8.0, 8.0};
    const int reps = order >= 9 ? 30 : 120;
    const double wrapper = time_seconds(
        [&] { kernel.compute(q.data(), 1e-3, inv_dx, nullptr, out); }, reps);
    const double nat = time_seconds(
        [&] {
          kernel.compute_native(q_a.data(), 1e-3, inv_dx, nullptr,
                                qavg_a.data(),
                                {g0.data(), g1.data(), g2.data()});
        },
        reps);
    native.add_row({std::to_string(order), ReportTable::num(wrapper * 1e3, 3),
                    ReportTable::num(nat * 1e3, 3),
                    ReportTable::num(100.0 * (wrapper - nat) / wrapper, 1)});
  }
  native.print("extension — AoSoA-native engine mode vs transposing wrapper");
  native.write_csv("bench_ablation_transpose_native.csv");
  std::printf("\nwrote bench_ablation_transpose_native.csv\n");
  return 0;
}
