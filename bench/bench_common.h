// Shared measurement harness for the figure benches.
//
// Workload = the paper's benchmark PDE (curvilinear elastic, m = 21
// quantities, Sec. VI) on a batch of cells processed round-robin like a mesh
// traversal, so kernel inputs do not stay cache-resident between calls.
// Each configuration reports:
//   * measured GFlop/s (wall clock x dynamically counted FLOPs) and the
//     percentage of the measured machine peak — the paper's
//     "Available Perf (%)" axis,
//   * the simulated memory-stall fraction from the trace twin + cache
//     hierarchy + stall model (the VTune substitute),
//   * the dynamic instruction mix (Fig. 9 axis).
#pragma once

#include <chrono>
#include <vector>

#include "exastp/kernels/registry.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/perf/cachesim.h"
#include "exastp/perf/instr_mix.h"
#include "exastp/perf/peak.h"
#include "exastp/perf/report.h"
#include "exastp/perf/trace_model.h"
#include "exastp/tensor/transpose.h"

namespace exastp::bench {

/// Seconds for `steps` fixed-dt solver steps (one untimed warm-up step
/// first) — the timing loop shared by the end-to-end scaling benches
/// (bench_threads, bench_shards). Template over the façade type so the
/// kernel-level benches including this header do not pull in the engine;
/// the callers pass a Simulation and include engine/simulation.h.
template <class Sim>
double time_fixed_steps(Sim& sim, int steps) {
  const double dt = sim.solver().stable_dt();
  sim.solver().step(dt);
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) sim.solver().step(dt);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline constexpr int kBenchMinOrder = 4;
inline constexpr int kBenchMaxOrder = 11;  // the paper sweeps N = 4..11

struct Measurement {
  double gflops = 0.0;
  double pct_peak = 0.0;
  double stall_pct = 0.0;
  InstrMix mix;
  std::size_t workspace_bytes = 0;
  double seconds_per_call = 0.0;
  std::uint64_t flops_per_call = 0;
};

/// Builds a physically admissible cell state for the benchmark PDE on the
/// kernel's layout.
inline AlignedVector benchmark_cell(const AosLayout& aos, int seed) {
  AlignedVector q(aos.size(), 0.0);
  const int n = aos.n;
  for (int k3 = 0; k3 < n; ++k3)
    for (int k2 = 0; k2 < n; ++k2)
      for (int k1 = 0; k1 < n; ++k1) {
        double* node = q.data() + aos.idx(k3, k2, k1, 0);
        for (int s = 0; s < 9; ++s)
          node[s] = 0.01 * ((k1 + 2 * k2 + 3 * k3 + s + seed) % 17) - 0.08;
        node[CurvilinearElasticPde::kRho] = 2.7;
        node[CurvilinearElasticPde::kCp] = 6.0;
        node[CurvilinearElasticPde::kCs] = 3.464;
        for (int r = 0; r < 3; ++r)
          node[CurvilinearElasticPde::kMetric + 3 * r + r] = 1.0;
        node[CurvilinearElasticPde::kMetric + 1] = 0.05;  // mild curvature
      }
  return q;
}

/// Measures one (variant, order, isa, precision) configuration. The kernel
/// boundary stays double in both precisions, so the same harness (and the
/// same dynamically counted FLOPs — fp32 is classified at double lane
/// width, see gemm.h) serves both.
inline Measurement measure_stp(StpVariant variant, int order, Isa isa,
                               double min_seconds = 0.15, int mesh_cells = 8,
                               Precision precision = Precision::kF64) {
  StpKernel kernel =
      make_stp_kernel(CurvilinearElasticPde{}, variant, order, isa,
                      NodeFamily::kGaussLegendre, precision);
  const AosLayout& aos = kernel.layout();

  std::vector<AlignedVector> cells;
  cells.reserve(mesh_cells);
  for (int c = 0; c < mesh_cells; ++c)
    cells.push_back(benchmark_cell(aos, c));
  AlignedVector qavg(aos.size()), f0(aos.size()), f1(aos.size()),
      f2(aos.size());
  StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};
  const std::array<double, 3> inv_dx{8.0, 8.0, 8.0};
  const double dt = 1e-3;

  // FLOPs per call are deterministic: count one call.
  FlopSection section;
  kernel.run(cells[0].data(), dt, inv_dx, nullptr, out);
  const FlopCounter per_call = section.delta();

  using clock = std::chrono::steady_clock;
  int reps = 1;
  double elapsed = 0.0;
  // Grow the repetition count until the timed run is long enough.
  for (;;) {
    const auto t0 = clock::now();
    for (int r = 0; r < reps; ++r)
      kernel.run(cells[r % mesh_cells].data(), dt, inv_dx, nullptr, out);
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    if (elapsed >= min_seconds) break;
    reps = std::max(reps * 2, static_cast<int>(reps * min_seconds /
                                               std::max(elapsed, 1e-6)));
  }

  Measurement m;
  m.flops_per_call = per_call.total();
  m.seconds_per_call = elapsed / reps;
  m.gflops = static_cast<double>(per_call.total()) * reps / elapsed / 1e9;
  m.pct_peak = 100.0 * m.gflops / available_peak_gflops();
  m.mix = instruction_mix(per_call);
  m.workspace_bytes = kernel.workspace_bytes();

  // Simulated memory-stall proxy (end-to-end step, like the paper's
  // full-application measurement). The rejected SoA-UF ablation variant has
  // no trace twin; its stall column stays at zero.
  if (variant != StpVariant::kSoaUfSplitCk) {
    CacheSim sim = CacheSim::skylake_sp();
    TwinResult twin =
        trace_stp(variant, order, twin_pde<CurvilinearElasticPde>(), isa, sim,
                  /*warmup=*/1, /*reps=*/2, /*include_corrector=*/true);
    m.stall_pct =
        100.0 * StallModel{}.stall_fraction(twin.cache, twin.flops.flops);
  }
  return m;
}

}  // namespace exastp::bench
