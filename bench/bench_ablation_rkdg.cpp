// Ablation E10: ADER-DG vs RK4-DG time-to-solution.
//
// The paper's introduction motivates ADER-DG over RK-DG: one cache-friendly
// element-local predictor plus a single corrector traversal per time step
// versus one full mesh-wide operator evaluation per RK stage. This bench
// runs both on the same acoustic plane wave (same spatial discretization,
// same CFL bound), to the same end time, and compares wall time, L2 error,
// steps and operator/predictor evaluations.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "exastp/pde/acoustic.h"
#include "exastp/scenarios/planewave.h"
#include "exastp/solver/norms.h"
#include "exastp/solver/rk_dg_solver.h"

using namespace exastp;

int main() {
  ReportTable table({"order", "ader_ms", "rk4_ms", "ader_err", "rk4_err",
                     "ader_steps", "rk4_steps", "rk4_over_ader_time"});
  for (int order : {3, 4, 5, 6}) {
    AcousticPde pde;
    PlaneWave wave;
    GridSpec grid;
    grid.cells = {4, 2, 2};
    auto runtime = std::make_shared<PdeAdapter<AcousticPde>>(pde);
    const double t_end = 0.2;
    auto exact = [&](const std::array<double, 3>& x, double t) {
      return wave.pressure(x, t);
    };
    using clock = std::chrono::steady_clock;

    AderDgSolver ader(runtime,
                      make_stp_kernel(pde, StpVariant::kAosoaSplitCk, order,
                                      host_best_isa()),
                      grid);
    ader.set_initial_condition(
        [&](const std::array<double, 3>& x, double* q) {
          wave.initial_condition(x, q);
        });
    auto t0 = clock::now();
    const int ader_steps = ader.run_until(t_end);
    const double ader_s =
        std::chrono::duration<double>(clock::now() - t0).count();

    RkDgSolver rk(runtime, order, host_best_isa(), grid);
    rk.set_initial_condition(
        [&](const std::array<double, 3>& x, double* q) {
          wave.initial_condition(x, q);
        });
    t0 = clock::now();
    const int rk_steps = rk.run_until(t_end);
    const double rk_s =
        std::chrono::duration<double>(clock::now() - t0).count();

    table.add_row({std::to_string(order),
                   ReportTable::num(ader_s * 1e3, 1),
                   ReportTable::num(rk_s * 1e3, 1),
                   ReportTable::num(l2_error(ader, AcousticPde::kP, exact), 8),
                   ReportTable::num(l2_error(rk, AcousticPde::kP, exact), 8),
                   std::to_string(ader_steps), std::to_string(rk_steps),
                   ReportTable::num(rk_s / ader_s, 2)});
  }
  table.print("ADER-DG vs RK4-DG time-to-solution (acoustic plane wave)");
  table.write_csv("bench_ablation_rkdg.csv");
  std::printf("\nexpected: comparable errors; RK4 pays four mesh-wide "
              "operator evaluations per step\nwrote bench_ablation_rkdg.csv\n");
  return 0;
}
