// Ablation E10: ADER-DG vs RK4-DG time-to-solution.
//
// The paper's introduction motivates ADER-DG over RK-DG: one cache-friendly
// element-local predictor plus a single corrector traversal per time step
// versus one full mesh-wide operator evaluation per RK stage. This bench
// runs both on the same acoustic plane wave (same spatial discretization,
// same CFL bound), to the same end time, and compares wall time, L2 error
// and steps. Both steppers are built through the Simulation façade — the
// stepper is just a config string.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "exastp/engine/simulation.h"

using namespace exastp;

namespace {

struct RunResult {
  double seconds = 0.0;
  double l2 = 0.0;
  int steps = 0;
};

RunResult run(const char* stepper, int order) {
  SimulationConfig config =
      parse_simulation_args({"scenario=planewave", "t_end=0.2"});
  config.stepper = stepper;
  config.order = order;
  config.grid.cells = {4, 2, 2};
  Simulation sim = Simulation::from_config(std::move(config));

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  RunResult result;
  result.steps = sim.run();
  result.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  result.l2 = sim.l2_error();
  return result;
}

}  // namespace

int main() {
  ReportTable table({"order", "ader_ms", "rk4_ms", "ader_err", "rk4_err",
                     "ader_steps", "rk4_steps", "rk4_over_ader_time"});
  for (int order : {3, 4, 5, 6}) {
    const RunResult ader = run("ader", order);
    const RunResult rk = run("rk4", order);
    table.add_row({std::to_string(order),
                   ReportTable::num(ader.seconds * 1e3, 1),
                   ReportTable::num(rk.seconds * 1e3, 1),
                   ReportTable::num(ader.l2, 8), ReportTable::num(rk.l2, 8),
                   std::to_string(ader.steps), std::to_string(rk.steps),
                   ReportTable::num(rk.seconds / ader.seconds, 2)});
  }
  table.print("ADER-DG vs RK4-DG time-to-solution (acoustic plane wave)");
  table.write_csv("bench_ablation_rkdg.csv");
  std::printf("\nexpected: comparable errors; RK4 pays four mesh-wide "
              "operator evaluations per step\nwrote bench_ablation_rkdg.csv\n");
  return 0;
}
