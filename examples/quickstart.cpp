// Quickstart: the smallest complete exastp program.
//
// Solves the 3-D acoustic wave equation on a periodic unit cube with an
// order-5 ADER-DG scheme using the paper's fastest kernel variant
// (AoSoA SplitCK), and verifies the result against the exact plane-wave
// solution.
//
//   build/examples/quickstart
#include <cstdio>

#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/scenarios/planewave.h"
#include "exastp/solver/norms.h"

using namespace exastp;

int main() {
  // 1. Pick a PDE (quantities + user functions) and a kernel variant.
  AcousticPde pde;
  const int order = 5;
  StpKernel kernel = make_stp_kernel(pde, StpVariant::kAosoaSplitCk, order,
                                     host_best_isa());

  // 2. Describe the mesh.
  GridSpec grid;
  grid.cells = {3, 3, 3};
  grid.extent = {1.0, 1.0, 1.0};  // periodic unit cube (default boundaries)

  // 3. Build the solver and set the initial condition.
  auto runtime = std::make_shared<PdeAdapter<AcousticPde>>(pde);
  AderDgSolver solver(runtime, std::move(kernel), grid);
  PlaneWave wave;
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        wave.initial_condition(x, q);
      });

  // 4. Run and check against the exact solution.
  const double t_end = 0.25;
  const int steps = solver.run_until(t_end);
  const double err = l2_error(
      solver, AcousticPde::kP,
      [&](const std::array<double, 3>& x, double t) {
        return wave.pressure(x, t);
      });

  std::printf("advanced to t = %.3f in %d steps\n", solver.time(), steps);
  std::printf("L2 pressure error vs exact plane wave: %.3e\n", err);
  std::printf("pressure at domain centre: %.6f (exact %.6f)\n",
              solver.sample({0.5, 0.5, 0.5}, AcousticPde::kP),
              wave.pressure({0.5, 0.5, 0.5}, t_end));
  return err < 1e-3 ? 0 : 1;
}
