// Quickstart: the smallest complete exastp program.
//
// Solves the 3-D acoustic wave equation on a periodic unit cube with an
// order-5 ADER-DG scheme using the paper's fastest kernel variant
// (AoSoA SplitCK), and verifies the result against the exact plane-wave
// solution — all selected by name through the Simulation façade.
//
//   build/examples/quickstart
#include <cstdio>

#include "exastp/engine/simulation.h"
#include "exastp/scenarios/planewave.h"

using namespace exastp;

int main() {
  // PDE, scenario, kernel variant, order and mesh are runtime strings; the
  // scenario supplies the initial condition and the exact solution.
  Simulation sim = Simulation::from_args({"pde=acoustic",
                                          "scenario=planewave",
                                          "variant=aosoa_splitck", "order=5",
                                          "cells=3x3x3", "t_end=0.25"});

  const int steps = sim.run();
  const double err = sim.l2_error();

  std::printf("advanced to t = %.3f in %d steps\n", sim.solver().time(),
              steps);
  std::printf("L2 pressure error vs exact plane wave: %.3e\n", err);
  std::printf("pressure at domain centre: %.6f (exact %.6f)\n",
              sim.solver().sample({0.5, 0.5, 0.5}, AcousticPde::kP),
              PlaneWave{}.pressure({0.5, 0.5, 0.5}, sim.solver().time()));
  return err < 1e-3 ? 0 : 1;
}
