// Convergence study: demonstrates the design order of the ADER-DG scheme
// (N nodes per dimension -> O(h^N) error) for every kernel variant on the
// exact acoustic plane wave. This is the numerical-correctness backdrop of
// the paper: all optimization stages solve the same scheme.
//
//   build/examples/planewave_convergence
#include <cmath>
#include <cstdio>

#include "exastp/engine/simulation.h"
#include "exastp/perf/report.h"

using namespace exastp;

namespace {

double run_error(StpVariant variant, int order, int cells) {
  SimulationConfig config = parse_simulation_args(
      {"scenario=planewave", "t_end=0.2"});
  config.variant = variant;
  config.order = order;
  config.grid.cells = {cells, 1, 1};  // x-directed wave on a 1-D column
  Simulation sim = Simulation::from_config(std::move(config));
  sim.run();
  return sim.l2_error();
}

}  // namespace

int main() {
  ReportTable table(
      {"variant", "order", "err_4_cells", "err_8_cells", "observed_rate"});
  for (StpVariant v : kAllVariants) {
    for (int order : {2, 3, 4, 5}) {
      const double coarse = run_error(v, order, 4);
      const double fine = run_error(v, order, 8);
      table.add_row({variant_name(v), std::to_string(order),
                     ReportTable::num(coarse, 8), ReportTable::num(fine, 8),
                     ReportTable::num(std::log2(coarse / fine), 2)});
    }
  }
  table.print("plane-wave convergence (expected rate ~ order)");
  table.write_csv("planewave_convergence.csv");
  std::printf("\nwrote planewave_convergence.csv\n");
  return 0;
}
