// Convergence study: demonstrates the design order of the ADER-DG scheme
// (N nodes per dimension -> O(h^N) error) for every kernel variant on the
// exact acoustic plane wave. This is the numerical-correctness backdrop of
// the paper: all four optimization stages solve the same scheme.
//
//   build/examples/planewave_convergence
#include <cmath>
#include <cstdio>

#include "exastp/kernels/registry.h"
#include "exastp/pde/acoustic.h"
#include "exastp/perf/report.h"
#include "exastp/scenarios/planewave.h"
#include "exastp/solver/norms.h"

using namespace exastp;

namespace {

double run_error(StpVariant variant, int order, int cells) {
  AcousticPde pde;
  GridSpec grid;
  grid.cells = {cells, 1, 1};
  auto runtime = std::make_shared<PdeAdapter<AcousticPde>>(pde);
  AderDgSolver solver(
      runtime, make_stp_kernel(pde, variant, order, host_best_isa()), grid);
  PlaneWave wave;  // x-directed wave on a 1-D column
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        wave.initial_condition(x, q);
      });
  solver.run_until(0.2);
  return l2_error(solver, AcousticPde::kP,
                  [&](const std::array<double, 3>& x, double t) {
                    return wave.pressure(x, t);
                  });
}

}  // namespace

int main() {
  ReportTable table(
      {"variant", "order", "err_4_cells", "err_8_cells", "observed_rate"});
  for (StpVariant v : kAllVariants) {
    for (int order : {2, 3, 4, 5}) {
      const double coarse = run_error(v, order, 4);
      const double fine = run_error(v, order, 8);
      table.add_row({variant_name(v), std::to_string(order),
                     ReportTable::num(coarse, 8), ReportTable::num(fine, 8),
                     ReportTable::num(std::log2(coarse / fine), 2)});
    }
  }
  table.print("plane-wave convergence (expected rate ~ order)");
  table.write_csv("planewave_convergence.csv");
  std::printf("\nwrote planewave_convergence.csv\n");
  return 0;
}
