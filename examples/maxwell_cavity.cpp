// Maxwell cavity example: an electromagnetic pulse trapped in a perfectly
// conducting box, demonstrating the engine's PDE generality (the same
// optimized kernels run an entirely different physics) and the energy
// diagnostics. The cavity mode, PEC walls and material defaults come from
// the "maxwell_cavity" scenario registration.
//
//   build/examples/maxwell_cavity [order]
#include <cstdio>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/solver/energy.h"

using namespace exastp;

int main(int argc, char** argv) {
  std::vector<std::string> args{"scenario=maxwell_cavity", "t_end=1.0"};
  if (argc > 1) args.push_back("order=" + std::string(argv[1]));
  Simulation sim = Simulation::from_args(args);

  const double e0 = maxwell_energy(sim.solver());
  std::printf("PEC cavity, order %d, initial EM energy %.6f\n",
              sim.config().order, e0);
  std::printf("%8s  %12s  %10s\n", "t", "energy", "kept_pct");
  for (int i = 1; i <= 5; ++i) {
    sim.solver().run_until(0.2 * i);
    const double e = maxwell_energy(sim.solver());
    std::printf("%8.2f  %12.6f  %9.2f%%\n", sim.solver().time(), e,
                100.0 * e / e0);
  }
  const double kept = maxwell_energy(sim.solver()) / e0;
  std::printf("energy retained after one box-crossing time: %.1f%%\n",
              100.0 * kept);
  std::printf("L2 error vs the exact standing mode: %.3e\n", sim.l2_error());
  return (kept > 0.5 && kept <= 1.0 + 1e-9) ? 0 : 1;
}
