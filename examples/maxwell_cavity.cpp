// Maxwell cavity example: an electromagnetic pulse trapped in a perfectly
// conducting box, demonstrating the engine's PDE generality (the same four
// optimized kernels run an entirely different physics) and the energy
// diagnostics.
//
//   build/examples/maxwell_cavity [order]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "exastp/kernels/registry.h"
#include "exastp/pde/maxwell.h"
#include "exastp/solver/energy.h"

using namespace exastp;

int main(int argc, char** argv) {
  const int order = argc > 1 ? std::atoi(argv[1]) : 4;
  constexpr double kPi = std::numbers::pi;

  MaxwellPde pde;
  GridSpec grid;
  grid.cells = {3, 3, 3};
  grid.boundary = {BoundaryKind::kWall, BoundaryKind::kWall,
                   BoundaryKind::kWall};  // PEC box
  auto runtime = std::make_shared<PdeAdapter<MaxwellPde>>(pde);
  AderDgSolver solver(
      runtime,
      make_stp_kernel(pde, StpVariant::kAosoaSplitCk, order, host_best_isa()),
      grid);

  // TE-like mode: Ey ~ sin(pi x) sin(pi z) satisfies the PEC condition on
  // the x- and z-walls.
  solver.set_initial_condition(
      [&](const std::array<double, 3>& x, double* q) {
        for (int s = 0; s < MaxwellPde::kVars; ++s) q[s] = 0.0;
        q[MaxwellPde::kEy] = std::sin(kPi * x[0]) * std::sin(kPi * x[2]);
        q[MaxwellPde::kEps] = 1.0;
        q[MaxwellPde::kMu] = 1.0;
      });

  const double e0 = maxwell_energy(solver);
  std::printf("PEC cavity, order %d, initial EM energy %.6f\n", order, e0);
  std::printf("%8s  %12s  %10s\n", "t", "energy", "kept_pct");
  for (int i = 1; i <= 5; ++i) {
    solver.run_until(0.2 * i);
    const double e = maxwell_energy(solver);
    std::printf("%8.2f  %12.6f  %9.2f%%\n", solver.time(), e,
                100.0 * e / e0);
  }
  const double kept = maxwell_energy(solver) / e0;
  std::printf("energy retained after one box-crossing time: %.1f%%\n",
              100.0 * kept);
  return (kept > 0.5 && kept <= 1.0 + 1e-9) ? 0 : 1;
}
