// Config-driven runner: any registered PDE x scenario x kernel variant x
// ISA x order from one binary, no recompilation.
//
//   build/examples/exastp_run pde=acoustic scenario=planewave
//       variant=aosoa_splitck order=5 cells=3x3x3 t_end=0.25   (one line)
//
// Streaming outputs come from the observer subsystem (receivers=...,
// output.series=..., output.receivers_csv=...), shards=AxBxC|N|auto runs
// the mesh domain-decomposed (the summary line prints the effective
// topology: shards=AxBxC threads=N cells/shard=...), and
// sweep=key:v1,v2,... runs the config once per value, streaming one
// summary CSV row per run to stdout.
//
// Ensemble mode: batch=jobs.txt runs every line of the file (one
// key=value config per line, '#' comments) through the SimulationPool —
// jobs=N simulations concurrently, results streamed in job order through
// gallery=csv|jsonl|bin|dir sinks (csv to stdout by default). A failing
// job is reported failed in its gallery row and the batch continues
// (failure isolation), so the exit code stays 0 as long as the batch
// itself ran.
//
// Run without arguments (or with "help") for the key reference and the
// registered PDE/scenario/observer/gallery names.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exastp/common/mpi_runtime.h"
#include "exastp/engine/simulation.h"
#include "exastp/engine/sweep.h"
#include "exastp/service/simulation_pool.h"

using namespace exastp;

namespace {

void print_usage() {
  std::printf("%s", simulation_usage().c_str());
  std::printf("\nregistered PDEs:");
  for (const std::string& name : PdeRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\nregistered scenarios:");
  for (const std::string& name : ScenarioRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\nregistered observers:");
  for (const std::string& name : ObserverRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\nregistered galleries:");
  for (const std::string& name : GalleryRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\n");
}

/// The ensemble keys, peeled off before config parsing (like sweep=):
/// batch=FILE, jobs=N, gallery=KIND[:PATH] (repeatable). Everything else
/// stays in the argument list as batch-wide config defaults.
struct BatchCli {
  bool found = false;
  std::string file;
  int jobs = 1;
  std::vector<GallerySpec> galleries;
};

std::vector<std::string> extract_batch(const std::vector<std::string>& args,
                                       BatchCli* batch) {
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    if (arg.rfind("batch=", 0) == 0) {
      batch->found = true;
      batch->file = arg.substr(6);
    } else if (arg.rfind("jobs=", 0) == 0) {
      batch->jobs = std::atoi(arg.c_str() + 5);
      if (batch->jobs < 1) {
        throw std::invalid_argument("jobs=" + arg.substr(5) +
                                    " needs a positive count");
      }
    } else if (arg.rfind("gallery=", 0) == 0) {
      batch->galleries.push_back(parse_gallery_spec(arg.substr(8)));
    } else {
      rest.push_back(arg);
    }
  }
  return rest;
}

int run_batch(const BatchCli& batch, std::vector<std::string> base_args) {
  PoolOptions options;
  options.jobs = batch.jobs;
  options.base_args = std::move(base_args);
  SimulationPool pool(std::move(options));
  const int submitted = pool.submit_batch_file(batch.file);
  std::fprintf(stderr, "batch %s: %d jobs at jobs=%d\n", batch.file.c_str(),
               submitted, batch.jobs);

  std::vector<GallerySpec> specs = batch.galleries;
  if (specs.empty()) specs.push_back(GallerySpec{});  // csv to stdout
  std::vector<std::unique_ptr<ResultGallery>> galleries;
  std::vector<ResultGallery*> sinks;
  for (const GallerySpec& spec : specs) {
    galleries.push_back(make_gallery(spec, &std::cout));
    sinks.push_back(galleries.back().get());
  }

  const std::vector<JobResult> results = pool.run(sinks);
  int done = 0, failed = 0, cached = 0, skipped = 0;
  for (const JobResult& r : results) {
    if (r.status == JobStatus::kDone) ++done;
    if (r.status == JobStatus::kFailed) ++failed;
    if (r.status == JobStatus::kSkipped) ++skipped;
    if (r.from_cache) ++cached;
    if (r.status == JobStatus::kFailed)
      std::fprintf(stderr, "job %d failed (%s): %s\n", r.id,
                   r.label.c_str(), r.error.c_str());
  }
  std::fprintf(stderr,
               "batch done: %d done (%d cached), %d failed, %d skipped — "
               "%d simulations executed\n",
               done, cached, failed, skipped, pool.runs_executed());
  for (const GallerySpec& spec : specs)
    if (!spec.path.empty())
      std::fprintf(stderr, "gallery %s: %s\n", spec.kind.c_str(),
                   spec.path.c_str());
  // Failure isolation is the point of the pool: bad configs are reported
  // in their rows, not through the batch exit code.
  return 0;
}

void report_outputs(const Simulation& sim) {
  const OutputConfig& output = sim.config().output;
  const TelemetryConfig& telemetry = sim.config().telemetry;
  if (!output.csv.empty()) std::printf("wrote %s\n", output.csv.c_str());
  if (!output.vtk.empty()) std::printf("wrote %s\n", output.vtk.c_str());
  if (!output.receivers_csv.empty())
    std::printf("streamed %s\n", output.receivers_csv.c_str());
  if (!output.receivers_bin.empty())
    std::printf("streamed %s\n", output.receivers_bin.c_str());
  if (!output.series.empty())
    std::printf("streamed VTK series %s_NNNN.vtk (index %s.pvd)\n",
                output.series.c_str(), output.series.c_str());
  if (sim.receivers() != nullptr)
    std::printf("sampled %zu receivers x %zu samples\n",
                sim.receivers()->num_receivers(),
                sim.receivers()->num_samples());
  if (!telemetry.trace.empty())
    std::printf("wrote trace %s (load in ui.perfetto.dev)\n",
                telemetry.trace.c_str());
  if (!telemetry.metrics.empty())
    std::printf("streamed metrics %s\n", telemetry.metrics.c_str());
}

}  // namespace

/// MPI_Init/Finalize bracket for mpirun launches (backend=mpi); both calls
/// are no-ops in builds without -DEXASTP_WITH_MPI=ON.
struct ScopedMpi {
  ScopedMpi(int* argc, char*** argv) { MpiRuntime::init(argc, argv); }
  ~ScopedMpi() { MpiRuntime::finalize(); }
};

int main(int argc, char** argv) {
  ScopedMpi mpi(&argc, &argv);
  // One reporting rank: under mpirun every rank runs the same simulation
  // loop (collectives keep them in lockstep) but only rank 0 narrates.
  const bool root = MpiRuntime::rank() == 0;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    if (root) print_usage();
    return 0;
  }

  try {
    SweepSpec sweep;
    bool has_sweep = false;
    args = extract_sweep(args, &sweep, &has_sweep);

    BatchCli batch;
    args = extract_batch(args, &batch);
    if (!batch.found && (batch.jobs != 1 || !batch.galleries.empty()))
      throw std::invalid_argument("jobs=/gallery= need batch=FILE");
    if (batch.found) {
      if (has_sweep)
        throw std::invalid_argument(
            "batch= and sweep= are mutually exclusive — put the swept "
            "configs in the batch file");
      if (MpiRuntime::initialized() && MpiRuntime::size() > 1)
        throw std::invalid_argument(
            "batch= is a single-process ensemble — do not launch it under "
            "mpirun");
      return run_batch(batch, std::move(args));
    }

    if (has_sweep) {
      std::fprintf(stderr, "sweep %s over %zu values\n", sweep.key.c_str(),
                   sweep.values.size());
      run_sweep(args, sweep, std::cout);
      return 0;
    }

    Simulation sim = Simulation::from_args(args);
    if (root) std::printf("%s\n", sim.summary().c_str());

    const int steps = sim.run();
    if (root)
      std::printf("advanced to t = %g in %d steps (%d cells, %d DOF/cell)\n",
                  sim.solver().time(), steps, sim.solver().grid().num_cells(),
                  sim.config().order * sim.config().order *
                      sim.config().order * sim.pde().info().quants);

    if (sim.has_exact_solution()) {
      // Collective under backend=mpi — every rank computes, rank 0 prints.
      const double error = sim.l2_error();
      if (root)
        std::printf("L2 error (quantity %d) = %.6e\n", sim.error_quantity(),
                    error);
    }
    if (root) {
      // Non-empty only when a telemetry output enabled spans: the phase
      // breakdown, overlap efficiency, shard imbalance and FLOP rate table.
      const std::string telemetry = sim.telemetry_summary();
      if (!telemetry.empty()) std::printf("%s", telemetry.c_str());
      report_outputs(sim);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // A rank failing alone must not strand its peers in a collective:
    // tear the whole launch down (no-op for single-rank and local runs).
    if (MpiRuntime::initialized() && MpiRuntime::size() > 1)
      MpiRuntime::abort(1);
    return 1;
  }
}
