// Config-driven runner: any registered PDE x scenario x kernel variant x
// ISA x order from one binary, no recompilation.
//
//   build/examples/exastp_run pde=acoustic scenario=planewave
//       variant=aosoa_splitck order=5 cells=3x3x3 t_end=0.25   (one line)
//
// Streaming outputs come from the observer subsystem (receivers=...,
// output.series=..., output.receivers_csv=...), shards=AxBxC|N|auto runs
// the mesh domain-decomposed (the summary line prints the effective
// topology: shards=AxBxC threads=N cells/shard=...), and
// sweep=key:v1,v2,... runs the config once per value, streaming one
// summary CSV row per run to stdout.
//
// Run without arguments (or with "help") for the key reference and the
// registered PDE/scenario/observer names.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exastp/common/mpi_runtime.h"
#include "exastp/engine/simulation.h"
#include "exastp/engine/sweep.h"

using namespace exastp;

namespace {

void print_usage() {
  std::printf("%s", simulation_usage().c_str());
  std::printf("\nregistered PDEs:");
  for (const std::string& name : PdeRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\nregistered scenarios:");
  for (const std::string& name : ScenarioRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\nregistered observers:");
  for (const std::string& name : ObserverRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\n");
}

void report_outputs(const Simulation& sim) {
  const OutputConfig& output = sim.config().output;
  if (!output.csv.empty()) std::printf("wrote %s\n", output.csv.c_str());
  if (!output.vtk.empty()) std::printf("wrote %s\n", output.vtk.c_str());
  if (!output.receivers_csv.empty())
    std::printf("streamed %s\n", output.receivers_csv.c_str());
  if (!output.receivers_bin.empty())
    std::printf("streamed %s\n", output.receivers_bin.c_str());
  if (!output.series.empty())
    std::printf("streamed VTK series %s_NNNN.vtk (index %s.pvd)\n",
                output.series.c_str(), output.series.c_str());
  if (sim.receivers() != nullptr)
    std::printf("sampled %zu receivers x %zu samples\n",
                sim.receivers()->num_receivers(),
                sim.receivers()->num_samples());
}

}  // namespace

/// MPI_Init/Finalize bracket for mpirun launches (backend=mpi); both calls
/// are no-ops in builds without -DEXASTP_WITH_MPI=ON.
struct ScopedMpi {
  ScopedMpi(int* argc, char*** argv) { MpiRuntime::init(argc, argv); }
  ~ScopedMpi() { MpiRuntime::finalize(); }
};

int main(int argc, char** argv) {
  ScopedMpi mpi(&argc, &argv);
  // One reporting rank: under mpirun every rank runs the same simulation
  // loop (collectives keep them in lockstep) but only rank 0 narrates.
  const bool root = MpiRuntime::rank() == 0;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    if (root) print_usage();
    return 0;
  }

  try {
    SweepSpec sweep;
    bool has_sweep = false;
    args = extract_sweep(args, &sweep, &has_sweep);
    if (has_sweep) {
      std::fprintf(stderr, "sweep %s over %zu values\n", sweep.key.c_str(),
                   sweep.values.size());
      run_sweep(args, sweep, std::cout);
      return 0;
    }

    Simulation sim = Simulation::from_args(args);
    if (root) std::printf("%s\n", sim.summary().c_str());

    const int steps = sim.run();
    if (root)
      std::printf("advanced to t = %g in %d steps (%d cells, %d DOF/cell)\n",
                  sim.solver().time(), steps, sim.solver().grid().num_cells(),
                  sim.config().order * sim.config().order *
                      sim.config().order * sim.pde().info().quants);

    if (sim.has_exact_solution()) {
      // Collective under backend=mpi — every rank computes, rank 0 prints.
      const double error = sim.l2_error();
      if (root)
        std::printf("L2 error (quantity %d) = %.6e\n", sim.error_quantity(),
                    error);
    }
    if (root) report_outputs(sim);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // A rank failing alone must not strand its peers in a collective:
    // tear the whole launch down (no-op for single-rank and local runs).
    if (MpiRuntime::initialized() && MpiRuntime::size() > 1)
      MpiRuntime::abort(1);
    return 1;
  }
}
