// Config-driven runner: any registered PDE x scenario x kernel variant x
// ISA x order from one binary, no recompilation.
//
//   build/examples/exastp_run pde=acoustic scenario=planewave
//       variant=aosoa_splitck order=5 cells=3x3x3 t_end=0.25   (one line)
//
// Run without arguments (or with "help") for the key reference and the
// registered PDE/scenario names.
#include <cstdio>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"

using namespace exastp;

namespace {

void print_usage() {
  std::printf("%s", simulation_usage().c_str());
  std::printf("\nregistered PDEs:");
  for (const std::string& name : PdeRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\nregistered scenarios:");
  for (const std::string& name : ScenarioRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    print_usage();
    return 0;
  }

  try {
    Simulation sim = Simulation::from_args(args);
    std::printf("%s\n", sim.summary().c_str());

    const int steps = sim.run();
    std::printf("advanced to t = %g in %d steps (%d cells, %d DOF/cell)\n",
                sim.solver().time(), steps, sim.solver().grid().num_cells(),
                sim.config().order * sim.config().order * sim.config().order *
                    sim.pde().info().quants);

    if (sim.has_exact_solution()) {
      std::printf("L2 error (quantity %d) = %.6e\n", sim.error_quantity(),
                  sim.l2_error());
    }
    if (!sim.config().output.csv.empty())
      std::printf("wrote %s\n", sim.config().output.csv.c_str());
    if (!sim.config().output.vtk.empty())
      std::printf("wrote %s\n", sim.config().output.vtk.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
