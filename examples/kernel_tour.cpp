// Kernel tour: drives the STP variants directly through the public kernel
// API (no mesh/solver) on one curvilinear-elastic cell, shows that they
// produce identical predictors, and prints each variant's footprint and
// instruction mix — the paper's whole story in one terminal screen. The
// kernels come from the string-keyed PDE registry, the same path the
// Simulation façade uses.
//
//   build/examples/kernel_tour [order]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "exastp/engine/pde_registry.h"
#include "exastp/pde/curvilinear_elastic.h"
#include "exastp/perf/instr_mix.h"
#include "exastp/perf/report.h"
#include "exastp/tensor/transpose.h"

using namespace exastp;

int main(int argc, char** argv) {
  const int order = argc > 1 ? std::atoi(argv[1]) : 6;
  auto factory = find_pde("curvilinear_elastic");
  const Isa isa = host_best_isa();
  std::printf("order %d, m = %d quantities, host ISA %s\n", order,
              factory->info().quants, isa_name(isa).c_str());

  // One smooth cell state, shared by all variants (unpadded AoS).
  const int m = factory->info().quants;
  std::vector<double> state(static_cast<std::size_t>(order) * order * order *
                            m);
  for (std::size_t k = 0; k < state.size() / m; ++k) {
    double* node = state.data() + k * m;
    for (int s = 0; s < 9; ++s)
      node[s] = std::sin(0.37 * static_cast<double>(k) + s);
    node[CurvilinearElasticPde::kRho] = 2.7;
    node[CurvilinearElasticPde::kCp] = 6.0;
    node[CurvilinearElasticPde::kCs] = 3.464;
    for (int r = 0; r < 3; ++r)
      node[CurvilinearElasticPde::kMetric + 3 * r + r] = 1.0;
  }

  ReportTable table({"variant", "workspace_KiB", "qavg[0]", "mix"});
  double reference = 0.0;
  for (StpVariant v : kAllVariants) {
    StpKernel kernel = factory->make_kernel(v, order, isa);
    const AosLayout& aos = kernel.layout();
    AlignedVector q(aos.size()), qavg(aos.size()), f0(aos.size()),
        f1(aos.size()), f2(aos.size());
    pad_aos(state.data(), order, m, q.data(), aos);
    StpOutputs out{qavg.data(), {f0.data(), f1.data(), f2.data()}};

    FlopSection section;
    kernel.run(q.data(), 1e-3, {4.0, 4.0, 4.0}, nullptr, out);
    InstrMix mix = instruction_mix(section.delta());

    const double probe = qavg[aos.idx(1, 1, 1, 2)];
    if (v == StpVariant::kGeneric) reference = probe;
    table.add_row({variant_name(v),
                   std::to_string(kernel.workspace_bytes() / 1024),
                   ReportTable::num(probe, 12), format_mix(mix)});
    if (std::abs(probe - reference) > 1e-9 * std::abs(reference)) {
      std::printf("VARIANT MISMATCH for %s\n", variant_name(v).c_str());
      return 1;
    }
  }
  table.print("all kernel variants, one scheme");
  std::printf("\nall variants agree to floating-point tolerance\n");
  return 0;
}
