// LOH1-like seismic scenario (the workload class behind the paper's
// evaluation, Sec. VI): elastic waves in a soft layer over a stiff
// halfspace, excited by a Ricker point source, recorded by a surface
// receiver network and streamed out while the run advances. The scenario
// (materials, source, boundaries) comes from the registry; the receiver
// and the incremental writers are declared through the observer subsystem
// (receivers= / output.* keys) — no hand-written recording loop.
//
//   build/examples/loh1 [order] [variant]
//   e.g. build/examples/loh1 5 splitck
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/pde/elastic.h"
#include "exastp/scenarios/loh1.h"

using namespace exastp;

int main(int argc, char** argv) {
  const std::array<double, 3> receiver = Loh1Config{}.receiver_position;
  std::vector<std::string> args{
      "scenario=loh1",
      "receivers=" + std::to_string(receiver[0]) + "," +
          std::to_string(receiver[1]) + "," + std::to_string(receiver[2]),
      // vx, vy, vz — streamed to CSV after every step.
      "output.quantities=" + std::to_string(ElasticPde::kVx) + "," +
          std::to_string(ElasticPde::kVy) + "," +
          std::to_string(ElasticPde::kVz),
      "output.receivers_csv=loh1_seismogram.csv",
      "output.series=loh1_snapshot", "output.interval=0.5"};
  if (argc > 1) args.push_back("order=" + std::string(argv[1]));
  if (argc > 2) args.push_back("variant=" + std::string(argv[2]));
  Simulation sim = Simulation::from_args(args);
  std::printf("LOH1-like layer-over-halfspace: %s\n", sim.summary().c_str());

  const int steps = sim.run();

  // The receiver network kept the full traces in memory; report the peak
  // vertical velocity seen at the surface receiver (quantity slot 2 = vz).
  const ReceiverNetwork& net = *sim.receivers();
  double peak_vz = 0.0, peak_t = 0.0;
  for (std::size_t i = 0; i < net.num_samples(); ++i) {
    const double vz = std::abs(net.value(i, 0, 2));
    if (vz > peak_vz) {
      peak_vz = vz;
      peak_t = net.times()[i];
    }
  }
  std::printf("ran %d steps to t = %.2f (%zu receiver samples)\n", steps,
              sim.solver().time(), net.num_samples());
  std::printf("receiver peak |vz| = %.4e at t = %.2f\n", peak_vz, peak_t);
  std::printf(
      "streamed loh1_seismogram.csv and loh1_snapshot_NNNN.vtk "
      "(index loh1_snapshot.pvd)\n");
  return peak_vz > 0.0 ? 0 : 1;
}
