// LOH1-like seismic scenario (the workload class behind the paper's
// evaluation, Sec. VI): elastic waves in a soft layer over a stiff
// halfspace, excited by a Ricker point source, recorded by a surface
// receiver and written out as a seismogram CSV plus a VTK snapshot of the
// final velocity field. The scenario (materials, source, boundaries) comes
// from the registry; only the receiver loop lives here.
//
//   build/examples/loh1 [order] [variant]
//   e.g. build/examples/loh1 5 splitck
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "exastp/engine/simulation.h"
#include "exastp/pde/elastic.h"
#include "exastp/scenarios/loh1.h"
#include "exastp/solver/output.h"

using namespace exastp;

int main(int argc, char** argv) {
  std::vector<std::string> args{"scenario=loh1"};
  if (argc > 1) args.push_back("order=" + std::string(argv[1]));
  if (argc > 2) args.push_back("variant=" + std::string(argv[2]));
  Simulation sim = Simulation::from_args(args);
  std::printf("LOH1-like layer-over-halfspace: %s\n", sim.summary().c_str());

  const std::array<double, 3> receiver_position =
      Loh1Config{}.receiver_position;
  SeismogramRecorder receiver(
      receiver_position,
      std::vector<int>{ElasticPde::kVx, ElasticPde::kVy, ElasticPde::kVz});
  const double t_end = sim.config().t_end;
  const double dt_record = 0.05;
  receiver.record(sim.solver());
  int steps = 0;
  for (double t = dt_record; t <= t_end + 1e-12; t += dt_record) {
    steps += sim.solver().run_until(t);
    receiver.record(sim.solver());
  }

  receiver.write_csv("loh1_seismogram.csv", {"vx", "vy", "vz"});
  write_vtk_cell_averages(
      sim.solver(), {ElasticPde::kVx, ElasticPde::kVz, ElasticPde::kSxx},
      {"vx", "vz", "sxx"}, "loh1_final.vtk");

  // Report the peak vertical velocity seen at the receiver.
  double peak_vz = 0.0, peak_t = 0.0;
  for (std::size_t i = 0; i < receiver.num_samples(); ++i) {
    const double vz = std::abs(receiver.samples()[i][2]);
    if (vz > peak_vz) {
      peak_vz = vz;
      peak_t = receiver.times()[i];
    }
  }
  std::printf("ran %d steps to t = %.2f\n", steps, sim.solver().time());
  std::printf("receiver peak |vz| = %.4e at t = %.2f\n", peak_vz, peak_t);
  std::printf("wrote loh1_seismogram.csv and loh1_final.vtk\n");
  return peak_vz > 0.0 ? 0 : 1;
}
