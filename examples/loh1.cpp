// LOH1-like seismic scenario (the workload class behind the paper's
// evaluation, Sec. VI): elastic waves in a soft layer over a stiff
// halfspace, excited by a Ricker point source, recorded by a surface
// receiver and written out as a seismogram CSV plus a VTK snapshot of the
// final velocity field.
//
//   build/examples/loh1 [order] [variant]
//   e.g. build/examples/loh1 5 splitck
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "exastp/kernels/registry.h"
#include "exastp/pde/elastic.h"
#include "exastp/scenarios/loh1.h"
#include "exastp/solver/output.h"

using namespace exastp;

int main(int argc, char** argv) {
  Loh1Config config;
  if (argc > 1) config.order = std::atoi(argv[1]);
  if (argc > 2) config.variant = parse_variant(argv[2]);

  std::printf("LOH1-like layer-over-halfspace, order %d, %s kernel\n",
              config.order, variant_name(config.variant).c_str());
  auto solver = make_loh1_solver(config, host_best_isa());

  SeismogramRecorder receiver(
      config.receiver_position,
      std::vector<int>{ElasticPde::kVx, ElasticPde::kVy, ElasticPde::kVz});
  const double t_end = 2.0;
  const double dt_record = 0.05;
  receiver.record(*solver);
  int steps = 0;
  for (double t = dt_record; t <= t_end + 1e-12; t += dt_record) {
    steps += solver->run_until(t);
    receiver.record(*solver);
  }

  receiver.write_csv("loh1_seismogram.csv", {"vx", "vy", "vz"});
  write_vtk_cell_averages(
      *solver, {ElasticPde::kVx, ElasticPde::kVz, ElasticPde::kSxx},
      {"vx", "vz", "sxx"}, "loh1_final.vtk");

  // Report the peak vertical velocity seen at the receiver.
  double peak_vz = 0.0, peak_t = 0.0;
  for (std::size_t i = 0; i < receiver.num_samples(); ++i) {
    const double vz = std::abs(receiver.samples()[i][2]);
    if (vz > peak_vz) {
      peak_vz = vz;
      peak_t = receiver.times()[i];
    }
  }
  std::printf("ran %d steps to t = %.2f\n", steps, solver->time());
  std::printf("receiver peak |vz| = %.4e at t = %.2f\n", peak_vz, peak_t);
  std::printf("wrote loh1_seismogram.csv and loh1_final.vtk\n");
  return peak_vz > 0.0 ? 0 : 1;
}
